"""DaCapo-style JVM workloads (paper §5.3).

Each application is modelled as a JVM process: a main thread that runs a
short serial JIT-ish warm-up, forks a pool of worker threads plus a periodic
GC helper, and waits.  Workers alternate compute bursts with short blocking
pauses (locks, queues, I/O) — the churn that makes placement matter.

Profiles are grouped into the paper's three behavioural classes:

* *few-task* applications (blue in Figure 10: fop, luindex, jython, ...):
  one or a few workers — Nest should be within ±5%;
* *churny* applications with a moderate number of frequently-blocking
  workers (h2, tradebeans, graphchi-eval, tomcat-eval, ...): these have
  high underload under CFS and are where Nest wins — mainly because worker
  pauses are longer than the hardware's gap forgiveness, so only Nest's
  warm-core spinning keeps the nest cores boosted, and because Nest packs
  the workers onto fewer physical cores (higher turbo budget);
* *machine-saturating* applications (lusearch, sunflow): one worker per
  hardware thread — parity expected.

Per-app parameters are tuned so CFS-schedutil underload-per-second is
ordered like the paper's ``u:X`` annotations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..kernel.scheduler_core import Kernel
from ..kernel.syscalls import (Channel, Compute, Fork, Recv, Send,
                               Sleep, WaitChildren)
from ..kernel.task import Task
from .base import Workload, jittered, ms_of_work


@dataclass(frozen=True)
class DacapoProfile:
    """Shape of one DaCapo application.

    ``tokens`` turns on the contention model: workers compete for that many
    work tokens through a shared queue, so their pauses are synchronisation
    waits whose length scales with the other workers' speed (as lock/queue
    waits do), not fixed timers.  ``tokens=None`` uses plain timer pauses
    (few-task and saturating apps, where pauses are real I/O or tiny).
    """

    name: str
    n_workers: int            # worker threads; 0 means one per hw thread,
                              # -2 means one per two hw threads
    burst_ms: float           # mean compute burst between pauses
    block_us: int             # mean timer pause (I/O) where applicable
    work_ms: float            # total compute per worker
    tokens: Optional[int] = None  # contention level (see above)
    io_every_bursts: int = 0  # every n-th burst also takes a timer pause
    jit_ms: float = 20.0      # serial warm-up on the main thread
    gc_period_ms: float = 30.0   # GC helper wakes this often
    gc_burst_ms: float = 2.0     # GC helper burst length
    few_tasks: bool = False   # the paper's "blue" class


#: The 21 applications of Figure 10 (original suite + "-eval" versions).
DACAPO_PROFILES: Dict[str, DacapoProfile] = {
    # ---- few-task applications (blue in Figure 10) ----
    "avrora":          DacapoProfile("avrora", 2, 1.0, 800, 120, few_tasks=True),
    "batik-eval":      DacapoProfile("batik-eval", 1, 8.0, 200, 250, few_tasks=True),
    "biojava-eval":    DacapoProfile("biojava-eval", 1, 6.0, 100, 400, few_tasks=True),
    "eclipse-eval":    DacapoProfile("eclipse-eval", 3, 2.0, 500, 200, few_tasks=True),
    "fop":             DacapoProfile("fop", 1, 5.0, 100, 150, few_tasks=True),
    "jme-eval":        DacapoProfile("jme-eval", 4, 2.0, 1000, 150, few_tasks=True),
    "jython":          DacapoProfile("jython", 1, 4.0, 150, 350, few_tasks=True),
    "kafka-eval":      DacapoProfile("kafka-eval", 4, 1.5, 1200, 150, few_tasks=True),
    "luindex":         DacapoProfile("luindex", 1, 6.0, 120, 180, few_tasks=True),
    "tradesoap-eval":  DacapoProfile("tradesoap-eval", 6, 1.0, 1500, 120,
                                     tokens=4, io_every_bursts=6, few_tasks=True),
    # ---- churny moderate-concurrency applications ----
    # Worker counts sit just above the effective concurrency (tokens), as
    # in the real applications: tasks usually find their previous core
    # free, and the primary nest can settle near the runnable count.
    "cassandra-eval":  DacapoProfile("cassandra-eval", 8, 1.5, 1500, 200,
                                     tokens=6, io_every_bursts=4),
    "graphchi-eval":   DacapoProfile("graphchi-eval", 10, 2.5, 1200, 190,
                                     tokens=8, io_every_bursts=4, gc_period_ms=15.0),
    "h2":              DacapoProfile("h2", 12, 2.0, 1500, 180,
                                     tokens=10, io_every_bursts=3, gc_period_ms=15.0),
    "pmd":             DacapoProfile("pmd", 16, 1.2, 1200, 110,
                                     tokens=13, io_every_bursts=4),
    "tomcat-eval":     DacapoProfile("tomcat-eval", 24, 0.8, 1500, 70,
                                     tokens=20, io_every_bursts=3),
    "tradebeans":      DacapoProfile("tradebeans", 14, 1.0, 2000, 160,
                                     tokens=11, io_every_bursts=3, gc_period_ms=12.0),
    "zxing-eval":      DacapoProfile("zxing-eval", 12, 1.0, 1000, 100,
                                     tokens=10, io_every_bursts=4),
    "xalan":           DacapoProfile("xalan", 28, 1.0, 800, 60,
                                     tokens=24, io_every_bursts=5),
    # ---- machine-saturating applications ----
    "lusearch":        DacapoProfile("lusearch", -2, 3.0, 300, 100),
    "lusearch-fix":    DacapoProfile("lusearch-fix", -2, 3.0, 300, 100),
    "sunflow":         DacapoProfile("sunflow", -2, 5.0, 100, 120),
}


def dacapo_names() -> list[str]:
    """Application names in the paper's figure order."""
    return list(DACAPO_PROFILES)


#: Applications the paper highlights as Nest's biggest DaCapo wins.
HIGH_UNDERLOAD_APPS = ("h2", "tradebeans", "graphchi-eval")


class DacapoWorkload(Workload):
    """One DaCapo application run."""

    def __init__(self, app: str = "h2", scale: float = 1.0) -> None:
        if app not in DACAPO_PROFILES:
            raise KeyError(f"unknown app {app!r}; known: {sorted(DACAPO_PROFILES)}")
        self.profile = DACAPO_PROFILES[app]
        self.scale = scale
        self.name = f"dacapo-{app}"
        self.n_gc_helpers = max(2, abs(self.profile.n_workers) // 3)
        self._shared_home: Optional[int] = None   # socket of the hot data

    def n_workers_on(self, kernel: Kernel) -> int:
        n = self.profile.n_workers
        if n == 0:
            return kernel.topology.n_cpus
        if n < 0:
            return max(1, kernel.topology.n_cpus // (-n))
        return n

    def start(self, kernel: Kernel) -> Task:
        rng = self.rng(kernel)
        return kernel.spawn(self._main, name=self.name,
                            args=(rng, self.n_workers_on(kernel)))

    # ------------------------------------------------------------------

    def _main(self, api, rng: random.Random, n_workers: int):
        p = self.profile
        # JIT-ish serial warm-up.
        yield Compute(ms_of_work(jittered(rng, p.jit_ms, 0.2, 1.0) * self.scale))
        run_ms = p.work_ms * self.scale
        queue = None
        if p.tokens is not None:
            queue = Channel(f"{p.name}-queue")
        for i in range(n_workers):
            # pthread_create costs real work between forks.
            yield Compute(ms_of_work(0.03))
            yield Fork(self._worker, name=f"{p.name}-w{i}",
                       args=(rng.randrange(1 << 30), run_ms, queue))
        if queue is not None:
            # Release the work tokens only once the pool is parked (thread
            # pools start idle), so the fork placements all see an idle
            # machine, as they do for a real JVM.
            for _ in range(min(p.tokens, n_workers)):
                yield Compute(ms_of_work(0.02))
                yield Send(queue, object())
        if p.gc_period_ms > 0:
            yield Fork(self._gc, name=f"{p.name}-gc",
                       args=(rng.randrange(1 << 30),))
        yield WaitChildren()

    def _worker(self, api, seed: int, run_ms: float,
                queue: Optional[Channel]):
        p = self.profile
        rng = random.Random(seed)
        topo = api.kernel.topology
        remaining = run_ms
        bursts = 0
        last_cpu = None
        while remaining > 0:
            if queue is not None:
                token = yield Recv(queue)
            burst = min(remaining, jittered(rng, p.burst_ms, 0.4, 0.05))
            # Cache locality: a burst on a new core refills the caches, and
            # a burst on a different socket than the shared working set's
            # home also pays cross-socket traffic.  This is what makes the
            # paper's multi-socket dispersal runs (Figure 9) slow.
            cost = burst
            cpu = api.task.cpu
            if queue is not None and cpu is not None:
                if last_cpu is not None and cpu != last_cpu:
                    if topo.die_of(cpu) == topo.die_of(last_cpu):
                        cost *= 1.03
                    else:
                        cost *= 1.12
                home = self._shared_home
                if home is not None and topo.die_of(cpu) != home:
                    cost *= 1.15
                self._shared_home = topo.die_of(cpu)
                last_cpu = cpu
            yield Compute(ms_of_work(cost))
            remaining -= burst
            if queue is not None:
                yield Send(queue, token)
            bursts += 1
            if remaining <= 0:
                break
            if queue is None:
                yield Sleep(max(1, int(rng.expovariate(1.0 / p.block_us))))
            elif p.io_every_bursts and bursts % p.io_every_bursts == 0:
                yield Sleep(max(1, int(rng.expovariate(1.0 / p.block_us))))

    def _gc(self, api, seed: int):
        """The GC coordinator: periodically runs a parallel collection with
        a handful of short-lived helper tasks, until the sibling workers
        have all exited.  The helpers briefly occupy idle cores — including
        the cores of blocked workers, displacing them on wakeup.  This is
        the 'brief daemon task' dispersal trigger that §3.3's attachment
        mechanism exists to counter."""
        p = self.profile
        rng = random.Random(seed)
        n_helpers = max(2, self.n_gc_helpers)
        me = api.task
        while True:
            workers_alive = any(c.alive and c is not me
                                for c in me.parent.children)
            if not workers_alive:
                return
            period_us = max(1000.0, rng.gauss(p.gc_period_ms * 1000,
                                              p.gc_period_ms * 200))
            yield Sleep(int(period_us))
            for i in range(n_helpers):
                # pthread_create costs real work between forks.
                yield Compute(ms_of_work(0.03))
                yield Fork(self._gc_helper, name=f"{p.name}-gch{i}",
                           args=(rng.randrange(1 << 30),))
            yield Compute(ms_of_work(jittered(rng, p.gc_burst_ms, 0.3, 0.2)))
            yield WaitChildren()

    def _gc_helper(self, api, seed: int):
        rng = random.Random(seed)
        yield Compute(ms_of_work(jittered(rng, self.profile.gc_burst_ms,
                                          0.4, 0.2)))
