"""Server workloads (paper §5.6, "Server tests").

Request-driven services on the 2-socket 6130: a load generator produces
requests at a configurable rate/concurrency; an acceptor dispatches them to
a worker pool.  The paper's findings to reproduce:

* *apache-siege-like* high-concurrency servers get slower under Nest as
  concurrency rises (the nest packs a saturating request flood onto too few
  cores before it can grow);
* *nginx-like* event-loop servers (few long-lived workers) are unaffected;
* *key-value stores* (leveldb, redis) — one or a few hot threads plus
  brief background work — improve, like the configure scripts (leveldb
  +25%, redis +7% in the paper).

The workload reports completed-request latency through ``recorder`` and
the run's makespan stands in for the benchmark's throughput metric.
"""

from __future__ import annotations

import random
from ..kernel.scheduler_core import Kernel
from ..kernel.syscalls import (Channel, Compute, Fork, Recv, Send, Sleep,
                               WaitChildren)
from ..kernel.task import Task
from ..metrics.latency import LatencyRecorder
from .base import Workload, ms_of_work, us_of_work


class ServerWorkload(Workload):
    """A request-driven server with a worker pool."""

    def __init__(self, name: str = "server", n_workers: int = 8,
                 n_requests: int = 400, request_us: float = 300.0,
                 arrival_us: int = 150, burstiness: float = 0.5) -> None:
        self.name = name
        self.n_workers = n_workers
        self.n_requests = n_requests
        self.request_us = request_us
        self.arrival_us = arrival_us
        self.burstiness = burstiness
        self.recorder = LatencyRecorder()

    def start(self, kernel: Kernel) -> Task:
        rng = self.rng(kernel)
        return kernel.spawn(self._main, name=self.name, args=(rng,))

    def _main(self, api, rng: random.Random):
        queue = Channel(f"{self.name}-requests")
        for w in range(self.n_workers):
            yield Compute(us_of_work(25))
            yield Fork(self._worker, name=f"{self.name}-w{w}",
                       args=(rng.randrange(1 << 30), queue))
        # The acceptor doubles as load generator: requests arrive in a
        # (possibly bursty) Poisson-ish process.
        sent = 0
        while sent < self.n_requests:
            burst = 1
            if rng.random() < self.burstiness:
                burst = rng.randrange(2, 6)
            for _ in range(burst):
                if sent >= self.n_requests:
                    break
                yield Compute(us_of_work(5))
                yield Send(queue, api.now)
                sent += 1
            yield Sleep(max(1, int(rng.expovariate(1.0 / self.arrival_us))))
        for _ in range(self.n_workers):
            yield Send(queue, None)
        yield WaitChildren()

    def _worker(self, api, seed: int, queue: Channel):
        rng = random.Random(seed)
        while True:
            arrived = yield Recv(queue)
            if arrived is None:
                return
            work = us_of_work(max(20.0, rng.gauss(self.request_us,
                                                  self.request_us * 0.3)))
            yield Compute(work)
            self.recorder.record(api.now - arrived)


def apache_siege(concurrency: int) -> ServerWorkload:
    """apache-siege-style: worker-per-connection, concurrency sweep."""
    return ServerWorkload(name=f"apache-siege-c{concurrency}",
                          n_workers=concurrency,
                          n_requests=30 * concurrency,
                          request_us=400.0,
                          arrival_us=max(20, 4000 // concurrency),
                          burstiness=0.7)


def nginx(n_requests: int = 600) -> ServerWorkload:
    """nginx-style: few long-lived event workers."""
    return ServerWorkload(name="nginx", n_workers=4, n_requests=n_requests,
                          request_us=120.0, arrival_us=120, burstiness=0.3)


class KeyValueStoreWorkload(Workload):
    """leveldb/redis-style store: a hot serving thread plus short-lived
    background compaction/AOF tasks — the fork-heavy low-concurrency shape
    that Nest accelerates."""

    def __init__(self, name: str = "leveldb", n_ops: int = 250,
                 op_us: float = 120.0, compaction_every: int = 25,
                 compaction_ms: float = 1.2) -> None:
        self.name = name
        self.n_ops = n_ops
        self.op_us = op_us
        self.compaction_every = compaction_every
        self.compaction_ms = compaction_ms

    def start(self, kernel: Kernel) -> Task:
        rng = self.rng(kernel)
        return kernel.spawn(self._main, name=self.name, args=(rng,))

    def _main(self, api, rng: random.Random):
        for i in range(self.n_ops):
            yield Compute(us_of_work(max(10.0, rng.gauss(self.op_us,
                                                         self.op_us * 0.3))))
            if rng.random() < 0.5:
                # Client round-trips / fsync waits, longer than the
                # hardware's activity window — only a warm-core spin keeps
                # the serving core's frequency across them.
                yield Sleep(rng.randrange(200, 900))
            if self.compaction_every and i % self.compaction_every == 0:
                yield Fork(self._compaction, name=f"{self.name}-bg",
                           args=(rng.randrange(1 << 30),))
        yield WaitChildren()

    def _compaction(self, api, seed: int):
        rng = random.Random(seed)
        ms = max(0.2, rng.gauss(self.compaction_ms, self.compaction_ms * 0.3))
        yield Compute(ms_of_work(ms * 0.6))
        yield Sleep(rng.randrange(50, 250))
        yield Compute(ms_of_work(ms * 0.4))


def leveldb() -> KeyValueStoreWorkload:
    return KeyValueStoreWorkload(name="leveldb", n_ops=300, op_us=150.0,
                                 compaction_every=20, compaction_ms=1.5)


def redis() -> KeyValueStoreWorkload:
    return KeyValueStoreWorkload(name="redis", n_ops=350, op_us=90.0,
                                 compaction_every=60, compaction_ms=0.8)
