"""Scheduler microbenchmarks: hackbench and schbench (paper §5.6).

*hackbench* creates groups of sender/receiver pairs that exchange messages
as fast as possible; its runtime is dominated by wakeup/placement cost.
The paper reports a substantial Nest *slowdown* here: Nest adds code to
core selection (more instruction-cache pressure), so a workload that is
nearly all core selection magnifies the overhead.  In the simulator that
overhead is the policy's ``selection_cost_us``, charged per placement.

*schbench* measures wakeup tail latency: message threads periodically wake
worker threads that run a short compute; the recorded latency is the gap
between the intended wake time and the moment the worker finishes.  The
paper finds no clear winner — sometimes CFS has the longer tail, sometimes
Nest.
"""

from __future__ import annotations

import random
from typing import List

from ..kernel.scheduler_core import Kernel
from ..kernel.syscalls import (Channel, Compute, Fork, Recv, Send, Sleep,
                               WaitChildren)
from ..kernel.task import Task
from ..metrics.latency import LatencyRecorder
from .base import Workload, ms_of_work, us_of_work


class HackbenchWorkload(Workload):
    """hackbench -g <groups> -l <loops>, scaled down."""

    def __init__(self, groups: int = 8, pairs_per_group: int = 4,
                 loops: int = 120, message_work_us: float = 4.0) -> None:
        self.groups = groups
        self.pairs_per_group = pairs_per_group
        self.loops = loops
        self.message_work_us = message_work_us
        self.name = f"hackbench-g{groups}"

    def start(self, kernel: Kernel) -> Task:
        rng = self.rng(kernel)
        return kernel.spawn(self._main, name=self.name, args=(rng,))

    def _main(self, api, rng: random.Random):
        for g in range(self.groups):
            for p in range(self.pairs_per_group):
                ping = Channel(f"g{g}p{p}-ping")
                pong = Channel(f"g{g}p{p}-pong")
                yield Compute(us_of_work(20))
                yield Fork(self._sender, name=f"g{g}s{p}", args=(ping, pong))
                yield Compute(us_of_work(20))
                yield Fork(self._receiver, name=f"g{g}r{p}", args=(ping, pong))
        yield WaitChildren()

    def _sender(self, api, ping: Channel, pong: Channel):
        work = us_of_work(self.message_work_us)
        for _ in range(self.loops):
            yield Compute(work)
            yield Send(ping, b"x")
            yield Recv(pong)

    def _receiver(self, api, ping: Channel, pong: Channel):
        work = us_of_work(self.message_work_us)
        for _ in range(self.loops):
            yield Recv(ping)
            yield Compute(work)
            yield Send(pong, b"y")


class SchbenchWorkload(Workload):
    """schbench-style wakeup-latency benchmark.

    ``recorder`` collects per-request latencies; read
    ``recorder.p999()`` after the run for the headline number.
    """

    def __init__(self, message_threads: int = 4, workers_per_thread: int = 8,
                 requests: int = 60, work_us: float = 300.0,
                 period_us: int = 1_000) -> None:
        self.message_threads = message_threads
        self.workers_per_thread = workers_per_thread
        self.requests = requests
        self.work_us = work_us
        self.period_us = period_us
        self.recorder = LatencyRecorder()
        self.name = f"schbench-m{message_threads}w{workers_per_thread}"

    def start(self, kernel: Kernel) -> Task:
        rng = self.rng(kernel)
        return kernel.spawn(self._main, name=self.name, args=(rng,))

    def _main(self, api, rng: random.Random):
        for m in range(self.message_threads):
            yield Compute(us_of_work(30))
            yield Fork(self._message_thread, name=f"msg{m}",
                       args=(rng.randrange(1 << 30),))
        yield WaitChildren()

    def _message_thread(self, api, seed: int):
        rng = random.Random(seed)
        channels: List[Channel] = []
        for w in range(self.workers_per_thread):
            chan = Channel(f"{api.task.name}-w{w}")
            channels.append(chan)
            yield Compute(us_of_work(25))
            yield Fork(self._worker, name=f"{api.task.name}-w{w}",
                       args=(chan,))
        for i in range(self.requests):
            yield Sleep(max(1, int(rng.expovariate(1.0 / self.period_us))))
            chan = channels[i % len(channels)]
            yield Send(chan, api.now)
        for chan in channels:
            yield Send(chan, None)     # poison pills
        yield WaitChildren()

    def _worker(self, api, chan: Channel):
        work = us_of_work(self.work_us)
        while True:
            sent_at = yield Recv(chan)
            if sent_at is None:
                return
            yield Compute(work)
            self.recorder.record(api.now - sent_at)
