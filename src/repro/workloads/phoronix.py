"""Phoronix multicore suite workloads (paper §5.5, Figure 13 and Table 4).

Every Phoronix test the paper highlights falls into one of a few behaviour
classes; each class is a parameterised generator here:

* ``shortburst`` — a dispatcher forks waves of very short jobs
  (graphics-magick operations): CFS-schedutil scatters them onto cold
  cores at low frequency; Nest reuses its warm nest.
* ``pulse`` — a persistent pool whose threads run sub-millisecond bursts
  separated by ~1 ms waits (zstd's worker pool): per-core activity is too
  gappy for the hardware to keep frequencies up, so CFS-schedutil runs
  slow, CFS-performance fixes the floor, and Nest's spinning keeps the
  nest cores boosted (on Speed Shift parts); on the Broadwell E7 the
  activity is too thin for Nest-schedutil to help (§5.5).
* ``steady`` — N long-running compute threads (cpuminer, oidn with N =
  #cpus; libavif with N ≈ socket size): saturating variants see parity;
  the libavif shape (N slightly above one socket's physical cores) is the
  §5.5 case where Nest's packing *hurts* — it pins all tasks to one socket
  at a low turbo ceiling plus SMT contention while CFS spills over.
* ``barriered`` — OpenMP kernels (rodinia leukocyte with 36 threads,
  askap): on Skylake CFS leaves tasks sharing hyperthreads on one socket
  while Nest's wakeup work conservation spreads them; on the E7 the spread
  lowers activity density and Nest loses — the paper's "opposite
  behaviour" case.
* ``churny`` — server-style token pools (cassandra): like DaCapo's h2.
* ``frame`` — frame-paced decode pools (libgav1, ffmpeg): moderate worker
  counts with per-frame sync and idle slack.

Table 4 is regenerated from a seeded population of tests drawn from these
classes with randomised parameters (`suite_population`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernel.scheduler_core import Kernel
from ..kernel.syscalls import (Barrier, BarrierWait, Channel, Compute, Fork,
                               Recv, Send, Sleep, WaitChildren)
from ..kernel.task import Task
from .base import Workload, jittered, ms_of_work


@dataclass(frozen=True)
class PhoronixProfile:
    """Shape of one Phoronix test."""

    name: str
    kind: str     # shortburst | pulse | steady | barriered | churny | frame
    n_threads: int = 0          # 0 = one per hw thread, -2 = one per 2 threads
    job_ms: float = 0.5         # shortburst: job length; steady: burst length
    waves: int = 60             # shortburst: number of dispatch waves
    wave_width: int = 6         # shortburst: jobs per wave
    work_ms: float = 120.0      # steady/churny/frame: per-thread compute
    rounds: int = 40            # barriered/frame: sync rounds
    chunk_ms: float = 1.5       # barriered/frame: per-round compute
    imbalance: float = 0.10     # barriered: chunk jitter
    tokens: int = 0             # churny: effective concurrency
    block_us: int = 1500        # churny/frame: pause length
    frame_gap_us: int = 800     # frame: inter-frame idle slack
    pulse_gap_us: int = 800     # pulse: wait between bursts


#: The Figure 13 tests (names follow the paper's numbering; Table 5 maps
#: them to the upstream Phoronix test profiles).
FIG13_PROFILES: Dict[str, PhoronixProfile] = {
    "arrayfire-2":        PhoronixProfile("arrayfire-2", "barriered", n_threads=-2, rounds=30, chunk_ms=2.0),
    "arrayfire-3":        PhoronixProfile("arrayfire-3", "barriered", n_threads=-2, rounds=60, chunk_ms=0.8),
    "askap-5":            PhoronixProfile("askap-5", "barriered", n_threads=-2, rounds=50, chunk_ms=1.5, imbalance=0.15),
    "cassandra-1":        PhoronixProfile("cassandra-1", "churny", n_threads=12, tokens=10, work_ms=120, block_us=2000),
    "cpuminer-opt-6":     PhoronixProfile("cpuminer-opt-6", "steady", n_threads=0, work_ms=100),
    "cpuminer-opt-7":     PhoronixProfile("cpuminer-opt-7", "steady", n_threads=0, work_ms=90),
    "cpuminer-opt-8":     PhoronixProfile("cpuminer-opt-8", "steady", n_threads=0, work_ms=110),
    "cpuminer-opt-9":     PhoronixProfile("cpuminer-opt-9", "steady", n_threads=0, work_ms=95),
    "cpuminer-opt-11":    PhoronixProfile("cpuminer-opt-11", "steady", n_threads=0, work_ms=105),
    "ffmpeg-1":           PhoronixProfile("ffmpeg-1", "frame", n_threads=8, rounds=60, chunk_ms=1.2, frame_gap_us=500),
    "graphics-magick-4":  PhoronixProfile("graphics-magick-4", "shortburst", waves=50, wave_width=4, job_ms=1.5),
    "libavif-avifenc-1":  PhoronixProfile("libavif-avifenc-1", "steady", n_threads=20, work_ms=90),
    "libgav1-1":          PhoronixProfile("libgav1-1", "frame", n_threads=8, rounds=70, chunk_ms=1.2, frame_gap_us=900),
    "libgav1-2":          PhoronixProfile("libgav1-2", "frame", n_threads=8, rounds=60, chunk_ms=1.0, frame_gap_us=900),
    "libgav1-3":          PhoronixProfile("libgav1-3", "frame", n_threads=8, rounds=70, chunk_ms=1.2, frame_gap_us=1000),
    "libgav1-4":          PhoronixProfile("libgav1-4", "frame", n_threads=8, rounds=80, chunk_ms=1.1, frame_gap_us=1100),
    "oidn-1":             PhoronixProfile("oidn-1", "steady", n_threads=0, work_ms=80),
    "oidn-2":             PhoronixProfile("oidn-2", "steady", n_threads=0, work_ms=80),
    "oidn-3":             PhoronixProfile("oidn-3", "steady", n_threads=0, work_ms=70),
    "onednn-4":           PhoronixProfile("onednn-4", "barriered", n_threads=16, rounds=60, chunk_ms=0.8, imbalance=0.15),
    "onednn-5":           PhoronixProfile("onednn-5", "barriered", n_threads=16, rounds=50, chunk_ms=0.7, imbalance=0.15),
    "onednn-7":           PhoronixProfile("onednn-7", "barriered", n_threads=-2, rounds=50, chunk_ms=1.5),
    "onednn-11":          PhoronixProfile("onednn-11", "barriered", n_threads=-2, rounds=50, chunk_ms=1.4),
    "onednn-14":          PhoronixProfile("onednn-14", "barriered", n_threads=-2, rounds=50, chunk_ms=1.5),
    "rodinia-5":          PhoronixProfile("rodinia-5", "barriered", n_threads=36, rounds=45, chunk_ms=1.5, imbalance=0.12),
    "zstd-compression-7": PhoronixProfile("zstd-compression-7", "pulse", n_threads=10, job_ms=0.4, work_ms=40, pulse_gap_us=2500),
    "zstd-compression-10": PhoronixProfile("zstd-compression-10", "pulse", n_threads=10, job_ms=0.5, work_ms=50, pulse_gap_us=2500),
}


def fig13_names() -> List[str]:
    return list(FIG13_PROFILES)


class PhoronixWorkload(Workload):
    """One Phoronix test, built from its behaviour-class profile."""

    def __init__(self, test: str = "zstd-compression-7",
                 profile: Optional[PhoronixProfile] = None,
                 scale: float = 1.0) -> None:
        if profile is None:
            if test not in FIG13_PROFILES:
                raise KeyError(f"unknown test {test!r}; "
                               f"known: {sorted(FIG13_PROFILES)}")
            profile = FIG13_PROFILES[test]
        self.profile = profile
        self.scale = scale
        self.name = f"phoronix-{profile.name}"
        self._shared_home: Optional[int] = None

    def n_threads_on(self, kernel: Kernel) -> int:
        n = self.profile.n_threads
        if n == 0:
            return kernel.topology.n_cpus
        if n < 0:
            return max(1, kernel.topology.n_cpus // (-n))
        return n

    def start(self, kernel: Kernel) -> Task:
        rng = self.rng(kernel)
        return kernel.spawn(self._main, name=self.name,
                            args=(rng, self.n_threads_on(kernel)))

    # ------------------------------------------------------------------

    def _main(self, api, rng: random.Random, n_threads: int):
        kind = self.profile.kind
        if kind == "shortburst":
            yield from self._run_shortburst(rng)
        elif kind == "pulse":
            yield from self._run_pool(rng, n_threads, self._pulse_thread)
        elif kind == "steady":
            yield from self._run_pool(rng, n_threads, self._steady_thread)
        elif kind == "barriered":
            yield from self._run_barriered(rng, n_threads)
        elif kind == "churny":
            yield from self._run_churny(rng, n_threads)
        elif kind == "frame":
            yield from self._run_frame(rng, n_threads)
        else:  # pragma: no cover - profile validation
            raise ValueError(f"unknown kind {kind!r}")

    # ---- shortburst (zstd, graphics-magick) ----------------------------

    def _run_shortburst(self, rng: random.Random):
        p = self.profile
        waves = max(1, round(p.waves * self.scale))
        for _ in range(waves):
            yield Compute(ms_of_work(0.05))
            for _ in range(p.wave_width):
                yield Compute(ms_of_work(0.02))
                yield Fork(self._short_job, name=f"{p.name}-job",
                           args=(rng.randrange(1 << 30),))
            yield WaitChildren()

    def _short_job(self, api, seed: int):
        rng = random.Random(seed)
        yield Compute(ms_of_work(jittered(rng, self.profile.job_ms, 0.4, 0.05)))

    # ---- pulse (zstd worker pools) --------------------------------------

    def _pulse_thread(self, api, seed: int):
        p = self.profile
        rng = random.Random(seed)
        remaining = p.work_ms * self.scale
        while remaining > 0:
            burst = min(remaining, jittered(rng, p.job_ms, 0.4, 0.05))
            yield Compute(ms_of_work(burst))
            remaining -= burst
            if remaining > 0:
                yield Sleep(max(1, int(rng.gauss(p.pulse_gap_us,
                                                 p.pulse_gap_us * 0.3))))

    # ---- steady (cpuminer, oidn, libavif) ------------------------------

    def _run_pool(self, api_rng, n_threads, thread_fn):
        p = self.profile
        for i in range(n_threads):
            yield Compute(ms_of_work(0.02))
            yield Fork(thread_fn, name=f"{p.name}-t{i}",
                       args=(api_rng.randrange(1 << 30),))
        yield WaitChildren()

    def _steady_thread(self, api, seed: int):
        p = self.profile
        rng = random.Random(seed)
        remaining = p.work_ms * self.scale
        while remaining > 0:
            burst = min(remaining, jittered(rng, 4.0, 0.3, 0.5))
            yield Compute(ms_of_work(burst))
            remaining -= burst
            if remaining > 0 and rng.random() < 0.1:
                yield Sleep(rng.randrange(100, 600))

    # ---- barriered (rodinia, askap, onednn, arrayfire) -------------------

    def _run_barriered(self, rng: random.Random, n_threads: int):
        p = self.profile
        barrier = Barrier(n_threads)
        for i in range(1, n_threads):
            yield Compute(ms_of_work(0.02))
            yield Fork(self._barrier_thread, name=f"{p.name}-t{i}",
                       args=(rng.randrange(1 << 30), barrier))
        yield from self._barrier_rounds(random.Random(rng.randrange(1 << 30)),
                                        barrier)
        yield WaitChildren()

    def _barrier_thread(self, api, seed: int, barrier: Barrier):
        yield from self._barrier_rounds(random.Random(seed), barrier)

    def _barrier_rounds(self, rng: random.Random, barrier: Barrier):
        p = self.profile
        rounds = max(1, round(p.rounds * self.scale))
        for _ in range(rounds):
            chunk = max(0.05, rng.gauss(p.chunk_ms, p.chunk_ms * p.imbalance))
            yield Compute(ms_of_work(chunk))
            yield BarrierWait(barrier)

    # ---- churny (cassandra) ---------------------------------------------

    def _run_churny(self, rng: random.Random, n_threads: int):
        p = self.profile
        queue = Channel(f"{p.name}-queue")
        for i in range(n_threads):
            yield Compute(ms_of_work(0.03))
            yield Fork(self._churny_thread, name=f"{p.name}-t{i}",
                       args=(rng.randrange(1 << 30), queue))
        for _ in range(min(p.tokens or n_threads, n_threads)):
            yield Compute(ms_of_work(0.02))
            yield Send(queue, object())
        yield WaitChildren()

    def _churny_thread(self, api, seed: int, queue: Channel):
        p = self.profile
        rng = random.Random(seed)
        remaining = p.work_ms * self.scale
        bursts = 0
        while remaining > 0:
            token = yield Recv(queue)
            burst = min(remaining, jittered(rng, 1.5, 0.4, 0.05))
            yield Compute(ms_of_work(burst))
            remaining -= burst
            yield Send(queue, token)
            bursts += 1
            if remaining > 0 and bursts % 4 == 0:
                yield Sleep(max(1, int(rng.expovariate(1.0 / p.block_us))))

    # ---- frame-paced (libgav1, ffmpeg) ----------------------------------

    def _run_frame(self, rng: random.Random, n_threads: int):
        p = self.profile
        barrier = Barrier(n_threads)
        for i in range(1, n_threads):
            yield Compute(ms_of_work(0.02))
            yield Fork(self._frame_thread, name=f"{p.name}-t{i}",
                       args=(rng.randrange(1 << 30), barrier))
        yield from self._frames(random.Random(rng.randrange(1 << 30)), barrier)
        yield WaitChildren()

    def _frame_thread(self, api, seed: int, barrier: Barrier):
        yield from self._frames(random.Random(seed), barrier)

    def _frames(self, rng: random.Random, barrier: Barrier):
        p = self.profile
        rounds = max(1, round(p.rounds * self.scale))
        for _ in range(rounds):
            chunk = max(0.05, rng.gauss(p.chunk_ms, p.chunk_ms * 0.3))
            yield Compute(ms_of_work(chunk))
            yield BarrierWait(barrier)
            # Inter-frame slack: the decoder waits for the bitstream/display.
            yield Sleep(max(1, int(rng.gauss(p.frame_gap_us,
                                             p.frame_gap_us * 0.3))))


# ---------------------------------------------------------------------------
# Table 4: the broader multicore-suite population.
# ---------------------------------------------------------------------------

#: Class mix of the wider suite: most tests saturate the machine and are
#: unaffected by placement, matching Table 4's large "same" column.
_POPULATION_MIX = (
    ("steady_saturating", 0.45),
    ("barriered_saturating", 0.20),
    ("shortburst", 0.12),
    ("frame", 0.10),
    ("churny", 0.08),
    ("steady_partial", 0.05),
)


def suite_population(n_tests: int = 60, seed: int = 7) -> List[PhoronixWorkload]:
    """A seeded population of synthetic multicore tests (Table 4)."""
    rng = random.Random(seed)
    out: List[PhoronixWorkload] = []
    for i in range(n_tests):
        r = rng.random()
        acc = 0.0
        for kind, w in _POPULATION_MIX:
            acc += w
            if r <= acc:
                break
        name = f"suite-{i:03d}-{kind}"
        if kind == "steady_saturating":
            prof = PhoronixProfile(name, "steady", n_threads=0,
                                   work_ms=rng.uniform(40, 90))
        elif kind == "barriered_saturating":
            prof = PhoronixProfile(name, "barriered", n_threads=-2,
                                   rounds=rng.randrange(20, 50),
                                   chunk_ms=rng.uniform(0.8, 2.5),
                                   imbalance=rng.uniform(0.05, 0.2))
        elif kind == "shortburst":
            prof = PhoronixProfile(name, "shortburst",
                                   waves=rng.randrange(30, 70),
                                   wave_width=rng.randrange(2, 9),
                                   job_ms=rng.uniform(0.3, 2.0))
        elif kind == "frame":
            prof = PhoronixProfile(name, "frame",
                                   n_threads=rng.randrange(6, 14),
                                   rounds=rng.randrange(40, 80),
                                   chunk_ms=rng.uniform(0.6, 1.5),
                                   frame_gap_us=rng.randrange(400, 1500))
        elif kind == "churny":
            nt = rng.randrange(8, 16)
            prof = PhoronixProfile(name, "churny", n_threads=nt,
                                   tokens=max(2, nt - rng.randrange(2, 5)),
                                   work_ms=rng.uniform(60, 120),
                                   block_us=rng.randrange(1000, 3000))
        else:  # steady_partial
            prof = PhoronixProfile(name, "steady",
                                   n_threads=rng.randrange(12, 24),
                                   work_ms=rng.uniform(50, 100))
        out.append(PhoronixWorkload(profile=prof, test=name))
    return out
