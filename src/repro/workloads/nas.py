"""NAS Parallel Benchmarks (paper §5.4).

HPC kernels with one task per hardware thread (OpenMP, class C): each
thread repeats *compute chunk → barrier*.  The optimal placement puts every
task on its own core at fork time and never moves it.

Per-kernel profiles control the chunk length, the number of barrier rounds
and the load imbalance between threads.  ``ep`` is embarrassingly parallel
(a single long chunk); ``cg`` has very short, communication-dominated
rounds; ``lu`` is a wavefront solver whose rounds are short and imbalanced,
making it the most placement-sensitive kernel (the paper measures ±54%
CFS-schedutil variance on the 4-socket 6130).

The machine-dependent shape to reproduce (Figure 12): near-parity on the
2-socket Skylake machines (with every core active there is no turbo
headroom for Nest to exploit) and solid Nest wins on the E7-8870 v4, whose
barrier waits drop cores out of their frequency each round unless the
warm-core spin bridges them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..kernel.scheduler_core import Kernel
from ..kernel.syscalls import Barrier, BarrierWait, Compute, Fork, WaitChildren
from ..kernel.task import Task
from .base import Workload, ms_of_work


@dataclass(frozen=True)
class NasProfile:
    """Shape of one NAS kernel (class C)."""

    name: str
    chunk_ms: float           # mean per-thread compute per round (at 1 GHz)
    rounds: int               # barrier rounds
    imbalance: float          # relative sigma of per-round chunk length
    init_ms: float = 10.0     # serial initialisation on the master


#: The nine kernels of Figure 12 (class C, scaled ~1/60).
NAS_PROFILES: Dict[str, NasProfile] = {
    "bt": NasProfile("bt", 2.0, 140, 0.10),
    "cg": NasProfile("cg", 0.35, 220, 0.15),
    "ep": NasProfile("ep", 35.0, 1, 0.05),
    "ft": NasProfile("ft", 4.0, 25, 0.08),
    "is": NasProfile("is", 0.8, 10, 0.20),
    "lu": NasProfile("lu", 1.2, 170, 0.25),
    "mg": NasProfile("mg", 1.0, 30, 0.12),
    "sp": NasProfile("sp", 1.5, 150, 0.12),
    "ua": NasProfile("ua", 1.3, 170, 0.15),
}


def nas_names() -> list[str]:
    """Kernel names in the paper's figure order."""
    return sorted(NAS_PROFILES)


class NasWorkload(Workload):
    """One NAS kernel run with one thread per hardware thread."""

    def __init__(self, kernel_name: str = "lu", scale: float = 1.0,
                 n_threads: int = 0) -> None:
        if kernel_name not in NAS_PROFILES:
            raise KeyError(f"unknown kernel {kernel_name!r}; "
                           f"known: {sorted(NAS_PROFILES)}")
        self.profile = NAS_PROFILES[kernel_name]
        self.scale = scale
        self.n_threads = n_threads     # 0 = one per hardware thread
        self.name = f"nas-{kernel_name}.C"

    def start(self, kernel: Kernel) -> Task:
        n = self.n_threads or kernel.topology.n_cpus
        rng = self.rng(kernel)
        return kernel.spawn(self._master, name=self.name, args=(rng, n))

    # ------------------------------------------------------------------

    def _master(self, api, rng: random.Random, n_threads: int):
        p = self.profile
        yield Compute(ms_of_work(p.init_ms))
        barrier = Barrier(n_threads)
        # The OpenMP runtime forks the team; the master is thread 0 and
        # participates in the barriers itself.
        for i in range(1, n_threads):
            yield Compute(ms_of_work(0.02))    # pthread_create work
            yield Fork(self._thread, name=f"{p.name}-t{i}",
                       args=(rng.randrange(1 << 30), barrier))
        yield from self._rounds(random.Random(rng.randrange(1 << 30)), barrier)
        yield WaitChildren()

    def _thread(self, api, seed: int, barrier: Barrier):
        yield from self._rounds(random.Random(seed), barrier)

    def _rounds(self, rng: random.Random, barrier: Barrier):
        p = self.profile
        rounds = max(1, round(p.rounds * self.scale))
        for _ in range(rounds):
            chunk = max(0.05, rng.gauss(p.chunk_ms, p.chunk_ms * p.imbalance))
            yield Compute(ms_of_work(chunk))
            yield BarrierWait(barrier)
