"""Canonical workload catalogue: build any named workload from a string.

The catalogue is the bridge between human-readable workload names (used by
the CLI, the experiment registry and the result cache) and workload
objects.  Crucially it makes sweep specs *picklable*: a parallel worker
process receives only ``(name, scale)`` and reconstructs the workload
here, instead of shipping a live object across the process boundary.

``make_workload(wl.name, scale)`` round-trips for every workload the
catalogue can build; :func:`can_reconstruct` checks that property, which
the parallel executor uses to decide whether a sweep can leave the
serial path.
"""

from __future__ import annotations

from typing import List

from .base import Workload
from .configure import ConfigureWorkload, configure_names
from .dacapo import DacapoWorkload, dacapo_names
from .deadline import DeadlineWorkload, deadline_names
from .messaging import HackbenchWorkload, SchbenchWorkload
from .nas import NasWorkload, nas_names
from .phoronix import PhoronixWorkload, fig13_names
from .servers import apache_siege, leveldb, nginx, redis


def make_workload(name: str, scale: float = 1.0) -> Workload:
    """Build a workload from its canonical name (see ``list``)."""
    if name.startswith("configure-"):
        return ConfigureWorkload(name.removeprefix("configure-"), scale=scale)
    if name.startswith("dacapo-"):
        return DacapoWorkload(name.removeprefix("dacapo-"), scale=scale)
    if name.startswith("nas-"):
        kern = name.removeprefix("nas-").removesuffix(".C")
        return NasWorkload(kern, scale=scale)
    if name.startswith("phoronix-"):
        return PhoronixWorkload(name.removeprefix("phoronix-"), scale=scale)
    if name == "hackbench":
        return HackbenchWorkload()
    if name.startswith("hackbench-g"):
        try:
            return HackbenchWorkload(groups=int(name.removeprefix("hackbench-g")))
        except ValueError:
            raise KeyError(f"unknown workload {name!r}; try 'list'") from None
    if name == "schbench":
        return SchbenchWorkload()
    if name == "deadline-periodic":
        return DeadlineWorkload(scale=scale)
    if name == "deadline-sporadic":
        return DeadlineWorkload(sporadic=True, scale=scale)
    if name.startswith("apache-siege-c"):
        try:
            return apache_siege(int(name.removeprefix("apache-siege-c")))
        except ValueError:
            raise KeyError(f"unknown workload {name!r}; try 'list'") from None
    simple = {"nginx": nginx, "leveldb": leveldb, "redis": redis}
    if name in simple:
        return simple[name]()
    raise KeyError(f"unknown workload {name!r}; try 'list'")


def workload_names() -> List[str]:
    out = [f"configure-{n}" for n in configure_names()]
    out += [f"dacapo-{n}" for n in dacapo_names()]
    out += [f"nas-{n}" for n in nas_names()]
    out += [f"phoronix-{n}" for n in fig13_names()]
    out += deadline_names()
    out += ["hackbench", "nginx", "leveldb", "redis"]
    return out


def can_reconstruct(workload: Workload) -> bool:
    """True if ``make_workload(workload.name, scale)`` rebuilds this
    workload — the precondition for running it through a RunSpec."""
    scale = getattr(workload, "scale", 1.0)
    try:
        rebuilt = make_workload(workload.name, scale=scale)
    except KeyError:
        return False
    return (rebuilt.name == workload.name
            and getattr(rebuilt, "scale", 1.0) == scale)
