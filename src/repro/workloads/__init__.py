"""Workload generators standing in for the paper's benchmark suites."""

from .base import BehaviourWorkload, Workload, jittered, ms_of_work, us_of_work
from .configure import CONFIGURE_PROFILES, ConfigureWorkload, configure_names
from .dacapo import (DACAPO_PROFILES, DacapoWorkload, HIGH_UNDERLOAD_APPS,
                     dacapo_names)
from .messaging import HackbenchWorkload, SchbenchWorkload
from .multiapp import MultiAppWorkload
from .nas import NAS_PROFILES, NasWorkload, nas_names
from .phoronix import (FIG13_PROFILES, PhoronixProfile, PhoronixWorkload,
                       fig13_names, suite_population)
from .servers import (KeyValueStoreWorkload, ServerWorkload, apache_siege,
                      leveldb, nginx, redis)

__all__ = [
    "Workload", "BehaviourWorkload", "jittered", "ms_of_work", "us_of_work",
    "ConfigureWorkload", "CONFIGURE_PROFILES", "configure_names",
    "DacapoWorkload", "DACAPO_PROFILES", "HIGH_UNDERLOAD_APPS", "dacapo_names",
    "HackbenchWorkload", "SchbenchWorkload",
    "MultiAppWorkload",
    "NasWorkload", "NAS_PROFILES", "nas_names",
    "PhoronixWorkload", "PhoronixProfile", "FIG13_PROFILES", "fig13_names",
    "suite_population",
    "ServerWorkload", "KeyValueStoreWorkload", "apache_siege", "nginx",
    "leveldb", "redis",
]
