"""Workload toolkit.

A workload is an object that knows how to start its root task(s) on a
kernel.  All randomness must come from the named streams of the kernel
engine's RNG registry, so a workload generates exactly the same task
structure and durations for every scheduler under the same seed — only the
*placement* differs between runs.

Durations are expressed in *cycles* (1000 cycles = 1 µs at 1 GHz), so the
wall-clock time of a task depends on the frequencies it gets: that is the
quantity the paper measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..kernel.scheduler_core import Kernel
from ..kernel.task import Task

#: Cycles per microsecond at 1 GHz: the unit conversion for behaviours.
CYCLES_PER_US_GHZ = 1_000


def ms_of_work(ms: float) -> float:
    """Cycles that take ``ms`` milliseconds on a 1 GHz core."""
    return ms * 1_000 * CYCLES_PER_US_GHZ


def us_of_work(us: float) -> float:
    """Cycles that take ``us`` microseconds on a 1 GHz core."""
    return us * CYCLES_PER_US_GHZ


class Workload:
    """Base class: subclasses implement :meth:`start`."""

    #: Human-readable name, used in results and the experiment registry.
    name: str = "workload"

    def start(self, kernel: Kernel) -> Task:
        """Spawn the root task(s); returns the main root task."""
        raise NotImplementedError

    def rng(self, kernel: Kernel, stream: str = "main") -> random.Random:
        """Deterministic per-workload random stream."""
        return kernel.engine.rng.stream(f"workload:{self.name}:{stream}")

    def describe(self) -> str:
        return self.name


@dataclass
class BehaviourWorkload(Workload):
    """Wrap a single root behaviour generator function as a workload."""

    behaviour: Callable[..., Any]
    workload_name: str = "behaviour"
    on_cpu: int = 0
    args: tuple = ()

    def __post_init__(self) -> None:
        self.name = self.workload_name

    def start(self, kernel: Kernel) -> Task:
        return kernel.spawn(self.behaviour, name=self.name,
                            on_cpu=self.on_cpu, args=self.args)


def jittered(rng: random.Random, mean: float, rel_sigma: float = 0.15,
             floor: float = 0.0) -> float:
    """Gaussian jitter around ``mean`` with relative sigma, floored."""
    return max(floor, rng.gauss(mean, mean * rel_sigma))
