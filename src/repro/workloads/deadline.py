"""Deadline-task family for fault-tolerant scheduling (DESIGN.md §10).

A dispatcher releases a stream of independent real-time *jobs*.  Each job
is a primary/backup pair: the primary forks with an :class:`RtSpec`
(relative deadline + WCET) and computes; the backup forks with the same
deadline, wired to the primary through an activation channel, and
immediately parks on ``Recv`` — it consumes no CPU while the primary is
healthy.  On normal completion the primary deposits :data:`RT_CANCEL`
and the backup retires; if a core failure destroys the primary, the
kernel deposits :data:`RT_GO` and the backup re-executes the job from
scratch (re-execution, not checkpointing — the paper-adjacent classic
primary/backup model).

Deadlines carry generous slack (``slack`` × the mean job length) so that
a fault-free run meets every deadline on any machine in the catalogue;
misses in a faulted run are then attributable to failures, which is what
the ``rt.miss_causality`` oracle invariant checks.

Arrivals are seeded per-workload streams: *periodic* releases on a fixed
period, *sporadic* draws exponential gaps.  Same seed ⇒ same arrival
times, job lengths and fork order, on either release model.
"""

from __future__ import annotations

import random

from ..kernel.scheduler_core import Kernel
from ..kernel.syscalls import (RT_CANCEL, RT_GO, Channel, Compute, Fork,
                               Recv, RtSpec, Send, Sleep, WaitChildren)
from ..kernel.task import Task
from .base import Workload, jittered, us_of_work


class DeadlineWorkload(Workload):
    """A stream of primary/backup deadline jobs.

    ``jobs`` scales with the workload's ``scale`` knob like every other
    catalogue workload; ``slack`` is the ratio of relative deadline to
    mean job length.
    """

    def __init__(self, jobs: int = 32, period_us: int = 2_000,
                 work_us: float = 3_000.0, slack: float = 8.0,
                 sporadic: bool = False, scale: float = 1.0) -> None:
        self.jobs = max(1, int(round(jobs * scale)))
        self.period_us = period_us
        self.work_us = work_us
        self.slack = slack
        self.sporadic = sporadic
        self.scale = scale
        self.name = "deadline-sporadic" if sporadic else "deadline-periodic"

    @property
    def deadline_us(self) -> int:
        """The relative deadline every job of this stream carries."""
        return max(1, int(self.work_us * self.slack))

    def start(self, kernel: Kernel) -> Task:
        rng = self.rng(kernel)
        return kernel.spawn(self._dispatcher, name=self.name, args=(rng,))

    def _dispatcher(self, api, rng: random.Random):
        deadline = self.deadline_us
        for j in range(self.jobs):
            if self.sporadic:
                gap = max(1, int(rng.expovariate(1.0 / self.period_us)))
            else:
                gap = self.period_us
            yield Sleep(gap)
            work = us_of_work(jittered(rng, self.work_us,
                                       floor=self.work_us * 0.25))
            chan = Channel(f"rt{j}-act")
            # The primary's fork placement commits synchronously inside
            # this Fork, so the backup's disjointness check (sched/ftrt.py)
            # sees the primary's core immediately.
            primary = yield Fork(
                self._primary, name=f"rt{j}p", args=(work, chan),
                rt=RtSpec(deadline_us=deadline, wcet_cycles=work))
            yield Fork(
                self._backup, name=f"rt{j}b", args=(work, chan),
                rt=RtSpec(deadline_us=deadline, wcet_cycles=work,
                          primary=primary, channel=chan))
        yield WaitChildren()

    def _primary(self, api, work: float, chan: Channel):
        yield Compute(work)
        # Retire the parked backup.  If a failure destroyed it first the
        # message sits unread, which is harmless.
        yield Send(chan, RT_CANCEL)

    def _backup(self, api, work: float, chan: Channel):
        msg = yield Recv(chan)
        if msg == RT_GO:
            # Promoted: the primary died, re-execute the job from scratch.
            yield Compute(work)


def deadline_names() -> list:
    return ["deadline-periodic", "deadline-sporadic"]
