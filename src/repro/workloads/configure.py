"""Software-configuration workloads (paper §5.2).

Typical configure scripts "fork off hundreds or even thousands of tasks,
many running alone and with a short lifespan".  The generator models a shell
script that sequentially runs *tests*: each test forks a short-lived child
(sometimes a small pipeline or a 2-3-way burst, as compile checks spawn
``cc → cc1 → as`` chains), waits for it, does a bit of script work, and
moves on.  Mostly exactly one task is runnable at any time — the ideal case
for Nest and the worst case for CFS-schedutil's scattering.

Eleven profiles mirror the packages of the Phoronix Timed Code Compilation
suite used in Figures 4-7.  Profile scale is chosen so that simulated
CFS-schedutil runtimes are proportional to the paper's reported times (a
fixed ~1/20 scale keeps simulations fast); *nodejs* is the paper's "trivial"
case — a handful of longer tasks that leave no room for placement gains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..kernel.scheduler_core import Kernel
from ..kernel.syscalls import Compute, Fork, Sleep, WaitChildren
from ..kernel.task import Task
from .base import Workload, jittered, ms_of_work


@dataclass(frozen=True)
class ConfigureProfile:
    """Shape of one package's configure script."""

    name: str
    n_tests: int              # sequential tests the script runs
    short_ms: float           # mean duration of a short probe child
    long_ms: float            # mean duration of a long compile-check child
    long_frac: float          # fraction of tests that are long
    pipeline_frac: float      # tests whose child forks a sub-child (cc->as)
    burst_frac: float         # tests forking 2-3 concurrent children
    script_ms: float          # script-side work between tests
    io_pause_us: int          # brief IO pause the script takes per test


#: Profiles mirroring the Phoronix Timed Code Compilation configure stage;
#: ``n_tests`` is proportional to the paper's CFS-schedutil runtimes on the
#: Intel 5218 (Figure 5), at roughly 1/20 scale.
CONFIGURE_PROFILES: Dict[str, ConfigureProfile] = {
    "erlang":       ConfigureProfile("erlang", 240, 1.2, 12.0, 0.10, 0.25, 0.10, 0.25, 150),
    "ffmpeg":       ConfigureProfile("ffmpeg", 100, 1.0, 10.0, 0.12, 0.35, 0.08, 0.20, 120),
    "gcc":          ConfigureProfile("gcc", 26, 1.0, 9.0, 0.12, 0.30, 0.08, 0.20, 120),
    "gdb":          ConfigureProfile("gdb", 22, 1.0, 9.0, 0.12, 0.30, 0.08, 0.20, 120),
    "imagemagick":  ConfigureProfile("imagemagick", 270, 1.1, 11.0, 0.10, 0.25, 0.06, 0.22, 130),
    "linux":        ConfigureProfile("linux", 45, 1.0, 8.0, 0.10, 0.30, 0.10, 0.18, 100),
    "llvm_ninja":   ConfigureProfile("llvm_ninja", 190, 1.1, 10.0, 0.10, 0.30, 0.10, 0.20, 120),
    "llvm_unix":    ConfigureProfile("llvm_unix", 230, 1.1, 10.0, 0.10, 0.30, 0.10, 0.20, 120),
    "mplayer":      ConfigureProfile("mplayer", 180, 1.0, 9.0, 0.10, 0.28, 0.08, 0.20, 110),
    "nodejs":       ConfigureProfile("nodejs", 7, 5.0, 90.0, 0.85, 0.10, 0.00, 0.50, 250),
    "php":          ConfigureProfile("php", 240, 1.1, 10.0, 0.10, 0.28, 0.08, 0.22, 120),
}


def configure_names() -> list[str]:
    """Package names in the paper's figure order."""
    return list(CONFIGURE_PROFILES)


class ConfigureWorkload(Workload):
    """A configure-script run for one package profile."""

    def __init__(self, package: str = "llvm_ninja", scale: float = 1.0) -> None:
        if package not in CONFIGURE_PROFILES:
            raise KeyError(f"unknown package {package!r}; "
                           f"known: {sorted(CONFIGURE_PROFILES)}")
        self.profile = CONFIGURE_PROFILES[package]
        self.scale = scale
        self.name = f"configure-{package}"

    def start(self, kernel: Kernel) -> Task:
        rng = self.rng(kernel)
        return kernel.spawn(self._script, name=self.name, args=(rng,))

    # ------------------------------------------------------------------

    def _script(self, api, rng: random.Random):
        p = self.profile
        n_tests = max(1, round(p.n_tests * self.scale))
        for _ in range(n_tests):
            yield Compute(ms_of_work(jittered(rng, p.script_ms, 0.3, 0.02)))
            r = rng.random()
            if r < p.burst_frac:
                n = rng.choice((2, 3))
                for _ in range(n):
                    yield Fork(self._child, name="probe", args=(rng.random(),))
            elif r < p.burst_frac + p.pipeline_frac:
                yield Fork(self._pipeline_child, name="cc", args=(rng.random(),))
            else:
                yield Fork(self._child, name="probe", args=(rng.random(),))
            yield WaitChildren()
            if p.io_pause_us > 0:
                yield Sleep(max(1, int(rng.gauss(p.io_pause_us,
                                                 p.io_pause_us * 0.3))))

    def _child_ms(self, u: float, rng: random.Random) -> float:
        p = self.profile
        if u < p.long_frac:
            return jittered(rng, p.long_ms, 0.4, 0.5)
        return jittered(rng, p.short_ms, 0.5, 0.1)

    def _child(self, api, u: float):
        rng = api.rng(f"{self.name}:{api.task.tid}")
        ms = self._child_ms(u, rng)
        # A child occasionally pauses briefly for IO mid-run.
        if rng.random() < 0.3:
            yield Compute(ms_of_work(ms * 0.5))
            yield Sleep(rng.randrange(50, 300))
            yield Compute(ms_of_work(ms * 0.5))
        else:
            yield Compute(ms_of_work(ms))

    def _pipeline_child(self, api, u: float):
        rng = api.rng(f"{self.name}:{api.task.tid}")
        ms = self._child_ms(u, rng)
        yield Compute(ms_of_work(ms * 0.6))
        # The compiler driver forks the assembler and waits for it.
        yield Fork(self._child, name="as", args=(u * 0.7,))
        yield Compute(ms_of_work(ms * 0.2))
        yield WaitChildren()
        yield Compute(ms_of_work(ms * 0.2))
