"""In-memory execution traces.

The tracer records, per core, the intervals during which a task was running
(or the idle loop was spinning) and the frequency in effect during each
interval.  This is the information the paper's figures 2, 8 and 9 plot, and
what the frequency-distribution metric (figures 6 and 11) aggregates.

Recording full traces is optional: metric consumers can subscribe to the
same begin/end callbacks without storing segments, so long simulations with
tracing disabled allocate nothing here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class Segment:
    """A maximal interval on one core with constant (task, frequency)."""

    core: int
    start: int          # µs
    end: int            # µs
    freq_mhz: int
    task_id: int        # -1 for the spinning idle loop
    spinning: bool = False

    @property
    def duration(self) -> int:
        return self.end - self.start


#: Subscriber signature: (core, start_us, end_us, freq_mhz, task_id, spinning)
SegmentSink = Callable[[int, int, int, int, int, bool], None]


class Tracer:
    """Collects execution segments and forwards them to metric sinks.

    Cores report *transitions* (task change or frequency change); the tracer
    closes the open segment on that core and opens a new one.  Zero-length
    segments are suppressed.
    """

    __slots__ = ("segments", "record_segments", "_open", "_sinks")

    def __init__(self, n_cores: int, record_segments: bool = False) -> None:
        self.segments: List[Segment] = []
        self.record_segments = record_segments
        # Per-core open segment: (start, freq_mhz, task_id, spinning) or None.
        self._open: List[Optional[tuple[int, int, int, bool]]] = [None] * n_cores
        self._sinks: List[SegmentSink] = []

    def add_sink(self, sink: SegmentSink) -> None:
        """Register a callback invoked for every closed segment."""
        self._sinks.append(sink)

    def begin(self, core: int, now: int, freq_mhz: int, task_id: int,
              spinning: bool = False) -> None:
        """Open a segment on ``core``; closes any open one first."""
        self.end(core, now)
        self._open[core] = (now, freq_mhz, task_id, spinning)

    def end(self, core: int, now: int) -> None:
        """Close the open segment on ``core``, if any."""
        state = self._open[core]
        if state is None:
            return
        self._open[core] = None
        start, freq_mhz, task_id, spinning = state
        if now <= start:
            return
        for sink in self._sinks:
            sink(core, start, now, freq_mhz, task_id, spinning)
        if self.record_segments:
            self.segments.append(
                Segment(core, start, now, freq_mhz, task_id, spinning))

    def freq_change(self, core: int, now: int, freq_mhz: int) -> None:
        """Split the open segment on ``core`` at a frequency transition."""
        state = self._open[core]
        if state is None:
            return
        _, old_freq, task_id, spinning = state
        if old_freq == freq_mhz:
            return
        self.begin(core, now, freq_mhz, task_id, spinning)

    def flush(self, now: int) -> None:
        """Close every open segment (end of simulation)."""
        for core in range(len(self._open)):
            self.end(core, now)

    def busy_segments(self) -> List[Segment]:
        """Recorded segments where a real task was running.

        Only meaningful on a tracer constructed with
        ``record_segments=True``.  Without recording the tracer still
        forwards every segment to its sinks but stores nothing, so this
        used to silently return ``[]`` — now it raises instead.  Metric
        consumers that do not need stored segments should subscribe via
        :meth:`add_sink`.
        """
        if not self.record_segments:
            raise RuntimeError(
                "busy_segments() on a Tracer with record_segments=False: "
                "no segments were stored; construct the Tracer with "
                "record_segments=True or consume segments via add_sink()")
        return [s for s in self.segments if s.task_id >= 0 and not s.spinning]
