"""Discrete-event simulation engine (clock, events, queue, tracing)."""

from .clock import Clock, TICK_US, US_PER_MS, US_PER_SEC, sec_from_us, ticks_to_us, us_from_ms, us_from_sec
from .engine import Engine, SimulationError
from .events import Event, EventKind
from .queue import EventQueue
from .rng import RngRegistry
from .trace import Segment, Tracer

__all__ = [
    "Clock", "TICK_US", "US_PER_MS", "US_PER_SEC",
    "sec_from_us", "ticks_to_us", "us_from_ms", "us_from_sec",
    "Engine", "SimulationError",
    "Event", "EventKind", "EventQueue",
    "RngRegistry",
    "Segment", "Tracer",
]
