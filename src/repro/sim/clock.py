"""Simulated time.

All simulation time is kept as integer microseconds so that event ordering is
exact and runs are bit-for-bit reproducible.  The scheduler tick matches the
paper's hardware: 250 Hz, i.e. one tick every 4 ms (the paper expresses the
Nest parameters ``P_remove`` and ``S_max`` in ticks of 4 ms).
"""

from __future__ import annotations

US_PER_MS = 1_000
US_PER_SEC = 1_000_000

#: Scheduler tick period (Linux CONFIG_HZ=250, as on the paper's testbed).
TICK_US = 4_000


def us_from_ms(ms: float) -> int:
    """Convert milliseconds to integer microseconds."""
    return int(round(ms * US_PER_MS))


def us_from_sec(sec: float) -> int:
    """Convert seconds to integer microseconds."""
    return int(round(sec * US_PER_SEC))


def sec_from_us(us: int) -> float:
    """Convert integer microseconds to float seconds."""
    return us / US_PER_SEC


def ticks_to_us(ticks: float) -> int:
    """Convert a duration expressed in scheduler ticks to microseconds."""
    return int(round(ticks * TICK_US))


class Clock:
    """Monotonic simulated clock.

    Only the simulation engine advances the clock; every other component
    reads it.  Time never goes backwards.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = start

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def now_sec(self) -> float:
        """Current simulated time in seconds."""
        return self._now / US_PER_SEC

    def advance_to(self, t: int) -> None:
        """Move the clock forward to ``t`` (monotonicity is enforced)."""
        if t < self._now:
            raise ValueError(f"clock moving backwards: {t} < {self._now}")
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock({self._now}us)"
