"""Simulated time.

All simulation time is kept as integer microseconds so that event ordering is
exact and runs are bit-for-bit reproducible.  The scheduler tick matches the
paper's hardware: 250 Hz, i.e. one tick every 4 ms (the paper expresses the
Nest parameters ``P_remove`` and ``S_max`` in ticks of 4 ms).
"""

from __future__ import annotations

US_PER_MS = 1_000
US_PER_SEC = 1_000_000

#: Scheduler tick period (Linux CONFIG_HZ=250, as on the paper's testbed).
TICK_US = 4_000


def us_from_ms(ms: float) -> int:
    """Convert milliseconds to integer microseconds."""
    return int(round(ms * US_PER_MS))


def us_from_sec(sec: float) -> int:
    """Convert seconds to integer microseconds."""
    return int(round(sec * US_PER_SEC))


def sec_from_us(us: int) -> float:
    """Convert integer microseconds to float seconds."""
    return us / US_PER_SEC


def ticks_to_us(ticks: float) -> int:
    """Convert a duration expressed in scheduler ticks to microseconds."""
    return int(round(ticks * TICK_US))


class Clock:
    """Monotonic simulated clock.

    Only the simulation engine advances the clock; every other component
    reads it.  Time never goes backwards.
    """

    #: ``now`` is a plain slot attribute rather than a property: it is read
    #: on nearly every event and the descriptor call dominated profiles.
    #: Only :meth:`advance_to` may write it.
    __slots__ = ("now",)

    def __init__(self, start: int = 0) -> None:
        self.now = start

    @property
    def now_sec(self) -> float:
        """Current simulated time in seconds."""
        return self.now / US_PER_SEC

    def advance_to(self, t: int) -> None:
        """Move the clock forward to ``t`` (monotonicity is enforced)."""
        if t < self.now:
            raise ValueError(f"clock moving backwards: {t} < {self.now}")
        self.now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock({self.now}us)"
