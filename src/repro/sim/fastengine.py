"""The fast simulation backend: SoA state tables + fused hot paths.

This module is the second engine behind ``--engine {ref,fast}``.  Every
class here is a *transliteration* of its reference counterpart: same
arithmetic, in the same order, on the same float/int objects, scheduling
the same events with the same sequence numbers — so a run through the
fast stack is bit-identical to the reference stack (enforced by
``verify fuzz`` running every scenario through both, and by
``tests/test_fastengine_parity.py``).

Where the speed comes from:

* :class:`FastEngine` — the run loop and ``after()`` inline the event
  queue (no ``EventQueue.pop``/``schedule`` call per event) and only
  touch the clock when the timestamp actually advances, batching all
  same-time events under one time update;
* :class:`FastRunQueue` / :class:`FastKernel` — every hot mutator
  dual-writes the object attribute *and* the flat SoA column
  (:mod:`repro.kernel.soa`), and the hot readers (placement scans,
  pricing, ticks) use ``col[cpu]`` integer indexing instead of
  attribute chains; PELT updates and event cancellation are inlined;
* :class:`FastFreqModel` — the DVFS target computation fuses the
  governor's request into the sweep (schedutil's utilisation math runs
  inline on the SoA columns) instead of calling through the governor
  object per hardware thread;
* :class:`FastCfsPolicy` / :class:`FastNestPolicy` — the §2.1/§3
  placement scans read only SoA columns; the bounded any-idle scan goes
  through :meth:`EngineState.first_idle`, which the numpy state
  vectorises on wide spans.

The bit-identity rules this file obeys (see DESIGN.md):

* every ``after()``/``cancel()`` of the reference is preserved — each
  schedule consumes a sequence number that decides same-time ties;
* obs events and metric increments happen at the same points, in the
  same order;
* ``min``/``max``/division stay the exact builtin operations of the
  reference (no inverse-multiply, no reordered accumulation);
* the decay-factor memo is shared with the reference module, keyed and
  cleared identically.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from ..core.nest import NestPolicy
from ..core.params import DEFAULT_PARAMS, NestParams
from ..governors.base import Governor
from ..governors.performance import PerformanceGovernor
from ..governors.schedutil import HEADROOM, SchedutilGovernor
from ..hw.energy import EnergyMeter
from ..hw.freqmodel import FreqModel
from ..kernel.pelt import _DECAY_CACHE, decay_factor
from ..kernel.runqueue import SLEEPER_BONUS_US, RunQueue
from ..kernel.scheduler_core import Kernel, KernelConfig
from ..kernel.soa import make_state
from ..kernel.syscalls import (BarrierWait, Compute, Exit, Fork, Recv, Send,
                               Sleep, WaitChildren, WaitTask, Yield)
from ..kernel.task import BlockReason, TaskState
from ..obs import events as oev
from ..sched.base import SelectionPolicy
from ..sched.cfs import WAKEUP_SCAN_LIMIT, CfsPolicy, _rotate
from ..sched.smove import SmovePolicy
from ..sim.clock import TICK_US
from ..sim.engine import Engine, SimulationError
from ..sim.events import Event, EventKind

# Module-level aliases: one global load instead of an attribute chain in
# the inlined PELT updates.  _DECAY_CACHE is cleared in place by
# decay_factor (never rebound), so the alias stays valid.
_DC = _DECAY_CACHE
_df = decay_factor

# IntEnum members *are* ints: they can sit in the heap tuples directly
# and compare at C level against the ints the reference queue stores.
_EK_COMPLETION = EventKind.COMPLETION
_EK_IO = EventKind.IO
_EK_FREQ = EventKind.FREQ
_EK_TICK = EventKind.TICK
_EK_BALANCE = EventKind.BALANCE
_EK_FORK = EventKind.FORK

_EXITED = TaskState.EXITED


class FastEngine(Engine):
    """Engine with the event loop and ``after()`` inlined.

    Behaviourally identical to :class:`Engine`: same events, same
    sequence numbers, same stop reasons, same ``events_processed``.
    """

    def after(
        self,
        delay: int,
        kind: EventKind,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        q = self.queue
        seq = q._seq
        q._seq = seq + 1
        t = self.clock.now + delay
        ev = Event(t, kind, seq, callback, args)
        heappush(q._heap, (t, kind, seq, ev))
        q._live += 1
        return ev

    def run(self, until: Optional[int] = None,
            max_events: int = 200_000_000) -> int:
        self._stopped = False
        self._stop_reason = None
        queue = self.queue
        heap = queue._heap
        clock = self.clock
        processed = 0
        pop = heappop
        while not self._stopped:
            if until is not None:
                while heap and heap[0][3].cancelled:
                    pop(heap)
                if not heap or heap[0][0] > until:
                    clock.advance_to(max(until, clock.now))
                    self.now = clock.now
                    self._stop_reason = "until"
                    break
            ev = None
            while heap:
                e = pop(heap)[3]
                if not e.cancelled:
                    queue._live -= 1
                    ev = e
                    break
            if ev is None:
                self._stop_reason = "drained"
                break
            t = ev.time
            if t != clock.now:
                # Same monotonicity guarantee as Clock.advance_to; all
                # events at one timestamp batch under a single update.
                if t < clock.now:
                    raise ValueError(
                        f"clock moving backwards: {t} < {clock.now}")
                clock.now = t
            self.now = t
            ev.callback(*ev.args)
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible livelock")
        self.events_processed += processed
        return clock.now


class FastRunQueue(RunQueue):
    """RunQueue that dual-writes the SoA ``nr_queued``/vruntime columns."""

    __slots__ = ("_nrq_col", "_vr_col")

    def __init__(self, cpu: int, now: int, state) -> None:
        RunQueue.__init__(self, cpu, now)
        self._nrq_col = state.nr_queued
        self._vr_col = state.t_vruntime

    def push(self, task) -> None:
        tid = task.tid
        if tid in self._queued:
            raise RuntimeError(f"{task} already queued on cpu {self.cpu}")
        vr = task.vruntime
        clamp = self.min_vruntime - SLEEPER_BONUS_US
        if vr < clamp:
            vr = clamp
            task.vruntime = vr
            self._vr_col[tid] = vr
        heappush(self._heap, (vr, self._seq, task))
        self._seq += 1
        self._queued.add(tid)
        n = self.nr_queued + 1
        self.nr_queued = n
        self._nrq_col[self.cpu] = n

    def pop(self):
        heap = self._heap
        queued = self._queued
        while heap:
            vr, _, task = heappop(heap)
            if task.tid in queued:
                queued.discard(task.tid)
                n = self.nr_queued - 1
                self.nr_queued = n
                self._nrq_col[self.cpu] = n
                if vr > self.min_vruntime:
                    self.min_vruntime = vr
                return task
        return None

    def remove(self, task) -> bool:
        if task.tid in self._queued:
            self._queued.discard(task.tid)
            n = self.nr_queued - 1
            self.nr_queued = n
            self._nrq_col[self.cpu] = n
            return True
        return False

    def steal_one(self):
        task = RunQueue.steal_one(self)
        if task is not None:
            self._nrq_col[self.cpu] = self.nr_queued
        return task


class FastFreqModel(FreqModel):
    """FreqModel with flattened PM params and the governor fused in.

    The per-core ``mhz`` lives in the ``_CoreState`` objects (shared
    with every un-overridden reader) *and* in the SoA ``core_mhz``
    column; every mutation point syncs the column before firing
    listeners, because the fast kernel's re-pricing reads the column.
    """

    def __init__(self, engine, topology, turbo, pm, governor,
                 machine, kernel, state) -> None:
        FreqModel.__init__(self, engine, topology, turbo, pm, governor)
        self._queue = engine.queue
        self._col_mhz = state.core_mhz
        self._ramp_up_step = pm.ramp_up_step_mhz
        self._ramp_interval = pm.ramp_interval_us
        self._decay_step = pm.decay_step_mhz
        self._decay_interval = pm.decay_interval_us
        self._idle_hold = pm.idle_hold_us
        self._turbo_latency = pm.turbo_latency_us
        self._gap_forgiveness = pm.gap_forgiveness_us
        self._instant_pstate = pm.instant_pstate
        self._autonomous_boost = pm.autonomous_boost
        self._cores_per_socket = topology.cores_per_socket
        # Governor fusion: the stock governors are plain functions of
        # machine constants and runqueue state, so their request/floor
        # math runs inline.  Unknown governor subclasses fall back to
        # the generic method-call path (mode 0).
        self._machine_min = machine.min_mhz
        self._max_turbo = machine.max_turbo_mhz
        self._nominal = machine.nominal_mhz
        #: Precomputed ``HEADROOM * max_turbo`` — same left-assoc
        #: grouping as the reference ``HEADROOM * max_turbo * util``.
        self._hdr_turbo = HEADROOM * machine.max_turbo_mhz
        if type(governor) is SchedutilGovernor:
            self._gov_mode = 2
        elif type(governor) is PerformanceGovernor:
            self._gov_mode = 1
        else:
            self._gov_mode = 0
        self._obs_log = engine.obs
        self._kernel_cpus = kernel.cpus
        self._kernel_rqs = kernel.rqs
        self._c_busy_val = state.busy_val
        self._c_busy_ts = state.busy_ts
        self._c_busy_now = state.busy_now

    # ---- fused schedutil request (bit-identical transliteration) ------

    def _sched_request(self, cpu: int, now: int) -> int:
        """``SchedutilGovernor.request_mhz`` inlined over the SoA columns."""
        v = self._c_busy_val[cpu]
        delta = now - self._c_busy_ts[cpu]
        if delta > 0:
            if self._c_busy_now[cpu]:
                y = _DC.get(delta)
                if y is None:
                    y = _df(delta)
                v = v * y + 1024 * (1.0 - y)
            elif v != 0.0:
                y = _DC.get(delta)
                if y is None:
                    y = _df(delta)
                v *= y
        est = 0.0
        current = self._kernel_cpus[cpu].current
        if current is not None:
            p = current.pelt
            pv = p.value
            pd = now - p.last_update_us
            if pd > 0:
                y = _DC.get(pd)
                if y is None:
                    y = _df(pd)
                pv = pv * y + 1024 * (1.0 - y)
            ue = current.util_est
            est = ue if ue >= pv else pv
        rq = self._kernel_rqs[cpu]
        queued = rq._queued
        if queued:
            for item in rq._heap:
                t = item[2]
                if t.tid in queued:
                    est += t.util_est
        m = min(1024, est)
        util = v if m <= v else m
        f = self._hdr_turbo * util / 1024
        mhz = int(f)
        if mhz > self._max_turbo:
            mhz = self._max_turbo
        if mhz < self._machine_min:
            mhz = self._machine_min
        obs = self._obs_log
        if obs.enabled:
            obs.emit(now, oev.FREQ_REQUEST, cpu=cpu, value=mhz)
        return mhz

    # ---- target computation and ramping --------------------------------

    def _target_mhz(self, pc: int, now: int) -> int:
        st = self._cores[pc]
        if st.active_threads == 0 and st.spinning_threads == 0:
            return self._min_mhz
        ceiling = self._ceiling_by_active[
            self._socket_active[self._socket_of_pc[pc]]]
        sustained = (st.active_since is not None
                     and now - st.active_since >= self._turbo_latency)
        if sustained and self._autonomous_boost:
            target = ceiling
        else:
            if not sustained and self._presustain_cap_mhz < ceiling:
                ceiling = self._presustain_cap_mhz
            mode = self._gov_mode
            if mode == 2:
                request = 0
                for t in self._siblings_of_pc[pc]:
                    r = self._sched_request(t, now)
                    if r > request:
                        request = r
                floor = self._machine_min
            elif mode == 1:
                request = self._max_turbo
                floor = self._nominal
            else:
                request = 0
                floor = self._min_mhz
                governor = self.governor
                for t in self._siblings_of_pc[pc]:
                    r = governor.request_mhz(t)
                    if r > request:
                        request = r
                    f = governor.floor_mhz(t)
                    if f > floor:
                        floor = f
            target = min(ceiling, max(request, floor))
        if st.spinning_threads > 0 and st.active_threads == 0:
            target = min(ceiling, max(target, st.mhz))
        target = max(target, self._min_mhz)
        cap = self._thermal_cap[pc]
        if cap is not None and target > cap:
            target = cap
        return target

    def set_thread_state(self, cpu: int, busy: bool, spinning: bool) -> None:
        if busy and spinning:
            raise ValueError("a thread cannot be busy and spinning")
        pc = self._pc_of[cpu]
        st = self._cores[pc]
        was_active = st.active_threads > 0 or st.spinning_threads > 0
        prev = self._thread_state
        old_busy, old_spin = prev[cpu]
        if old_busy:
            st.active_threads -= 1
        if old_spin:
            st.spinning_threads -= 1
        if busy:
            st.active_threads += 1
        if spinning:
            st.spinning_threads += 1
        prev[cpu] = (busy, spinning)

        now = self.engine.now
        active = st.active_threads > 0 or st.spinning_threads > 0
        if active and not was_active:
            if (st.idle_since is not None
                    and st.prev_active_since is not None
                    and now - st.idle_since <= self._gap_forgiveness):
                st.active_since = st.prev_active_since
            else:
                st.active_since = now
            st.idle_since = None
            socket = self._socket_of_pc[pc]
            self._socket_active[socket] += 1
            if self._instant_pstate:
                jump = self._target_mhz(pc, now)
            else:
                mode = self._gov_mode
                if mode == 2:
                    jump = self._machine_min
                elif mode == 1:
                    jump = self._nominal
                else:
                    jump = max(self.governor.floor_mhz(t)
                               for t in self._siblings_of_pc[pc])
                cap = self._thermal_cap[pc]
                if cap is not None and jump > cap:
                    jump = cap
            if st.mhz < jump:
                st.mhz = jump
                self._col_mhz[pc] = jump
                for fn in self._listeners:
                    fn(pc, jump)
            self._reevaluate_socket(socket)
        elif was_active and not active:
            st.prev_active_since = st.active_since
            st.active_since = None
            st.idle_since = now
            socket = self._socket_of_pc[pc]
            self._socket_active[socket] -= 1
            self._reevaluate_socket(socket)
        else:
            self._reevaluate(pc)

    def _reevaluate_socket(self, socket: int) -> None:
        cps = self._cores_per_socket
        base = socket * cps
        cores = self._cores
        min_mhz = self._min_mhz
        for pc in range(base, base + cps):
            st = cores[pc]
            if (st.active_threads == 0 and st.spinning_threads == 0
                    and st.step_event is None and st.mhz == min_mhz):
                continue
            self._reevaluate(pc)

    def _reevaluate(self, pc: int) -> None:
        st = self._cores[pc]
        ev = st.step_event
        if (st.active_threads == 0 and st.spinning_threads == 0
                and ev is None and st.mhz == self._min_mhz):
            return
        now = self.engine.now
        target = self._target_mhz(pc, now)
        if ev is not None:
            if not ev.cancelled:
                ev.cancelled = True
                self._queue._live -= 1
            st.step_event = None
        if target == st.mhz:
            if (st.active_threads > 0 or st.spinning_threads > 0) \
                    and self._turbo_latency > 0 \
                    and st.active_since is not None:
                remaining = self._turbo_latency - (now - st.active_since)
                if remaining > 0:
                    st.step_event = self.engine.after(
                        remaining, _EK_FREQ, self._step, (pc,))
            return
        if target > st.mhz:
            delay = self._ramp_interval
        else:
            delay = self._decay_interval
            if st.idle_since is not None:
                held = now - st.idle_since
                if held < self._idle_hold:
                    delay = self._idle_hold - held
        st.step_event = self.engine.after(delay, _EK_FREQ, self._step, (pc,))

    def _step(self, pc: int) -> None:
        st = self._cores[pc]
        st.step_event = None
        now = self.engine.now
        target = self._target_mhz(pc, now)
        mhz = st.mhz
        if target > mhz:
            new = mhz + self._ramp_up_step
            if new > target:
                new = target
        elif target < mhz:
            new = mhz - self._decay_step
            if new < target:
                new = target
        else:
            new = mhz
        if new != mhz:
            st.mhz = new
            self._col_mhz[pc] = new
            for fn in self._listeners:
                fn(pc, new)
        self._reevaluate(pc)

    # ---- cold mutators: keep the column in sync before listeners fire --

    def set_thermal_cap(self, physical_core: int,
                        mhz: Optional[int]) -> None:
        if mhz is not None:
            mhz = max(int(mhz), self._min_mhz)
        self._thermal_cap[physical_core] = mhz
        st = self._cores[physical_core]
        if mhz is not None and st.mhz > mhz:
            st.mhz = mhz
            self._col_mhz[physical_core] = mhz
            for fn in self._listeners:
                fn(physical_core, mhz)
        self._reevaluate(physical_core)

    def force_freq(self, physical_core: int, mhz: int) -> None:
        st = self._cores[physical_core]
        if st.mhz != mhz:
            st.mhz = mhz
            self._col_mhz[physical_core] = mhz
            for fn in self._listeners:
                fn(physical_core, mhz)
        self._reevaluate(physical_core)


class FastEnergyMeter(EnergyMeter):
    """Energy meter with the power summation loop de-chained.

    Same additions in the same order as :meth:`EnergyMeter._compute_power`
    (the cross-socket running total is float-order observable), but with
    the per-iteration attribute chains hoisted to locals.  ``m > vmax``
    replaces ``max(vmax, m)`` — identical for ints — and the dynamic-power
    term keeps the reference's left-associated ``c_dyn * f * v * v``.
    """

    def _compute_power(self) -> float:
        p = self.params
        topo = self.topology
        active = self._core_active
        mhz = self._core_mhz
        uncore = p.uncore_watts
        static = p.core_static_watts
        idle = p.core_idle_watts
        c_dyn = p.c_dyn
        v0 = p.v0
        v_slope = p.v_slope
        total = 0.0
        cps = topo.cores_per_socket
        base = 0
        for _socket in range(topo.n_sockets):
            total += uncore
            end = base + cps
            vmax_mhz = 0
            for pc in range(base, end):
                if active[pc]:
                    m = mhz[pc]
                    if m > vmax_mhz:
                        vmax_mhz = m
            v = v0 + v_slope * (vmax_mhz / 1000.0)
            for pc in range(base, end):
                if active[pc]:
                    total += static + c_dyn * (mhz[pc] / 1000.0) * v * v
                else:
                    total += idle
            base = end
        return total


class FastKernel(Kernel):
    """Kernel with SoA dual-writes and inlined hot paths.

    Construction order matters: the SoA tables and the flattened
    ``die_of`` map are created *before* ``Kernel.__init__`` because the
    fast policies bind (and capture column references) during it.
    """

    def __init__(self, engine, machine, policy, governor, config=None,
                 tracer=None, energy=None, use_numpy=None) -> None:
        topo = machine.topology
        self.state = make_state(topo.n_cpus, topo.n_physical_cores,
                                now=engine.now, min_mhz=machine.min_mhz,
                                use_numpy=use_numpy)
        self.die_of = tuple(topo.die_of(c) for c in range(topo.n_cpus))
        if energy is None:
            energy = FastEnergyMeter(topo)
        Kernel.__init__(self, engine, machine, policy, governor,
                        config=config, tracer=tracer, energy=energy)
        s = self.state
        # The online column aliases the kernel's hotplug list: bools are
        # ints, so hotplug writes are visible to every column reader.
        s.online = self.cpu_online
        self._queue = engine.queue
        self._die_span = tuple(self.domains.die_span(c)
                               for c in range(topo.n_cpus))
        self._c_nrq = s.nr_queued
        self._c_running = s.running
        self._c_pending = s.pending
        self._c_last_busy = s.last_busy
        self._c_busy_val = s.busy_val
        self._c_busy_ts = s.busy_ts
        self._c_busy_now = s.busy_now
        self._c_blocked_val = s.blocked_val
        self._c_blocked_ts = s.blocked_ts
        self._c_mhz = s.core_mhz
        self._c_tvr = s.t_vruntime
        self._c_tpv = s.t_pelt_val
        self._c_tpts = s.t_pelt_ts
        self._c_trem = s.t_remaining
        cfg = self.config
        self._ctx_cost = cfg.context_switch_us
        self._idle_wake = cfg.idle_wake_cost_us
        self._smt_factor = cfg.smt_contention_factor
        self._placement_delay = cfg.placement_delay_us
        self._newidle = cfg.newidle_balance
        # No-op hook elision: skipping a call whose body is the empty
        # base-class default is bit-identical.
        self._gov_on_tick = type(governor).on_tick is not Governor.on_tick
        self._gov_on_act = (type(governor).on_activity_change
                            is not Governor.on_activity_change)
        self._pol_on_tick = (type(policy).on_tick
                             is not SelectionPolicy.on_tick)

    # ---- engine-facing factories ---------------------------------------

    def _make_runqueue(self, cpu: int, now: int):
        return FastRunQueue(cpu, now, self.state)

    def _make_freqmodel(self, engine, machine, governor):
        return FastFreqModel(engine, self.topology, machine.turbo,
                             machine.pm, governor, machine=machine,
                             kernel=self, state=self.state)

    # ---- task creation --------------------------------------------------

    def _new_task(self, behaviour, name, parent, args=()):
        task = Kernel._new_task(self, behaviour, name, parent, args=args)
        row = self.state.add_task(self.engine.now)
        if row != task.tid:
            raise SimulationError("SoA task rows out of sync with tids")
        return task

    # ---- enqueue / preemption -------------------------------------------

    def enqueue(self, task, cpu: int) -> None:
        now = self.engine.now
        st = task.state
        if st is TaskState.RUNNING or st is TaskState.RUNNABLE:
            raise SimulationError(f"enqueue of already-runnable {task}")
        if task.prev_cpu is not None and task.prev_cpu != cpu:
            task.n_migrations += 1
        task.state = TaskState.RUNNABLE
        task.block_reason = BlockReason.NONE
        task.enqueued_us = now
        p = task.pelt                     # inline pelt.update(now, False)
        delta = now - p.last_update_us
        if delta > 0:
            v = p.value
            if v != 0.0:
                y = _DC.get(delta)
                if y is None:
                    y = _df(delta)
                p.value = v * y
            p.last_update_us = now
            tid = task.tid
            self._c_tpv[tid] = p.value
            self._c_tpts[tid] = now
        n_run = self.n_runnable + 1       # inline _runnable_delta(+1)
        self.n_runnable = n_run
        for fn in self.runnable_observers:
            fn(now, n_run)

        cs = self.cpus[cpu]
        if cs.spinning:
            self._stop_spin(cpu)
        if cs.current is not None:
            self._account_current(cpu)
        self.rqs[cpu].push(task)
        self.policy.on_enqueue(task, cpu)
        if cs.current is None:
            self._schedule(cpu)
        else:
            self._maybe_preempt(cpu, task)

    # ---- the dispatcher -------------------------------------------------

    def _run_task(self, cpu: int, task) -> bool:
        now = self.engine.now
        cs = self.cpus[cpu]
        rq = self.rqs[cpu]
        deep_idle = (not cs.spinning
                     and now - rq.last_busy_us > self._idle_wake)
        if cs.spinning:
            self._stop_spin(cpu)

        task.state = TaskState.RUNNING
        task.cpu = cpu
        if task.enqueued_us is not None:
            latency = now - task.enqueued_us
            task.wakeup_latency_us += latency
            task.enqueued_us = None
            self._h_wakeup_latency.observe(latency)
            if self.obs.enabled:
                self.obs.emit(now, oev.SCHED_DISPATCH, cpu=cpu,
                              task=task.tid, value=latency)
        if task.exec_start_us is None:
            task.exec_start_us = now
        cs.current = task
        self._c_running[cpu] = 1
        cs.stint_start = now
        cs.vr_last_update = now
        rq.nr_switches += 1

        self._set_thread_activity(cpu, busy=True)
        self.tracer.begin(cpu, now, self._c_mhz[self.pc_of[cpu]], task.tid)
        self._start_tick(cpu)

        switch_cost = self._ctx_cost
        if deep_idle:
            switch_cost += self._idle_wake
        while True:
            if task.remaining_cycles > 0:
                self._price_completion(cpu, task, extra_us=switch_cost)
                return True
            outcome = self._advance(task)
            if outcome == "compute":
                continue
            if outcome == "yield":
                self._stop_running(cpu, task)
                task.state = TaskState.RUNNABLE
                task.enqueued_us = now
                rq.push(task)
                return False
            return False

    def _price_completion(self, cpu: int, task, extra_us: int = 0) -> None:
        now = self.engine.now
        rate = float(self._c_mhz[self.pc_of[cpu]])
        sib = self.sibling_of[cpu]
        if sib != cpu and self.cpus[sib].current is not None:
            rate *= self._smt_factor
        if rate <= 0:
            raise SimulationError("zero frequency")
        task.run_start_us = now
        task.run_freq_mhz = rate
        remaining_us = task.remaining_cycles / rate
        delay = max(1, int(remaining_us + 0.999999)) + extra_us
        task.completion_event = self.engine.after(
            delay, _EK_COMPLETION, self._on_completion, (task,))

    def _reprice_running(self, cpu: int) -> None:
        task = self.cpus[cpu].current
        if task is None or task.completion_event is None:
            return
        now = self.engine.now
        elapsed = now - task.run_start_us
        consumed = elapsed * task.run_freq_mhz
        rem = task.remaining_cycles
        executed = rem if rem <= consumed else consumed
        rem -= executed
        task.remaining_cycles = rem
        task.total_cycles += executed
        self._c_trem[task.tid] = rem
        ev = task.completion_event
        if not ev.cancelled:                 # inline engine.cancel
            ev.cancelled = True
            self._queue._live -= 1
        self._price_completion(cpu, task)

    def _on_completion(self, task) -> None:
        cpu = task.cpu
        if cpu is None or task.state is not TaskState.RUNNING:
            raise SimulationError(f"completion for non-running {task}")
        task.completion_event = None
        now = self.engine.now
        task.total_cycles += task.remaining_cycles
        task.remaining_cycles = 0.0
        self._c_trem[task.tid] = 0.0
        self._account_current(cpu)

        while True:
            outcome = self._advance(task)
            if outcome == "compute":
                self._price_completion(cpu, task)
                return
            if outcome == "yield":
                self._stop_running(cpu, task)
                task.state = TaskState.RUNNABLE
                task.enqueued_us = now
                self.rqs[cpu].push(task)
                self._schedule(cpu)
                return
            if outcome == "blocked":
                self._schedule(cpu, after_block=True)
                return
            if outcome == "exited":
                self._schedule(cpu, after_block=False)
                self.policy.on_exit_idle(cpu)
                return
            raise SimulationError(f"unknown outcome {outcome}")

    # ---- behaviour interpretation ---------------------------------------

    def _advance(self, task) -> str:
        send = task.generator.send
        after = self.engine.after
        while True:
            try:
                action = send(task.resume_value)
            except StopIteration:
                self._exit_task(task)
                return "exited"
            task.resume_value = None

            if isinstance(action, Compute):
                if action.cycles <= 0:
                    continue
                rem = float(action.cycles)
                task.remaining_cycles = rem
                self._c_trem[task.tid] = rem
                return "compute"

            if isinstance(action, Fork):
                child = self._new_task(action.behaviour, action.name,
                                       parent=task, args=action.args)
                if action.rt is not None:
                    self._apply_rt_spec(child, action.rt)
                self._place_fork(child, parent_cpu=task.cpu)
                task.resume_value = child
                continue

            if isinstance(action, Sleep):
                if action.us <= 0:
                    continue
                self._block(task, BlockReason.TIMER)
                task.sleep_event = after(
                    action.us, _EK_IO, self._timer_wake, (task,))
                return "blocked"

            if isinstance(action, WaitChildren):
                # task.live_children builds a list over every child; an
                # early-exit scan for one live child decides identically.
                for c in task.children:
                    if c.state is not _EXITED:
                        self._block(task, BlockReason.CHILDREN)
                        return "blocked"
                continue

            if isinstance(action, WaitTask):
                target = action.task
                if target.state is not _EXITED:
                    target.waited_by = task
                    task.waiting_for = target
                    self._block(task, BlockReason.TASK)
                    return "blocked"
                continue

            if isinstance(action, BarrierWait):
                woken = action.barrier.arrive(task)
                if woken is None:
                    self._block(task, BlockReason.BARRIER)
                    return "blocked"
                waker_cpu = task.cpu
                for t in woken:
                    self._place_wakeup(t, waker_cpu)
                continue

            if isinstance(action, Send):
                receiver = action.channel.put(action.message)
                if receiver is not None:
                    ok, msg = action.channel.try_get()
                    if not ok:  # pragma: no cover - put guarantees a message
                        raise SimulationError("channel lost a message")
                    receiver.resume_value = msg
                    self._place_wakeup(receiver, task.cpu)
                continue

            if isinstance(action, Recv):
                ok, msg = action.channel.try_get()
                if ok:
                    task.resume_value = msg
                    continue
                action.channel.receivers.append(task)
                self._block(task, BlockReason.CHANNEL)
                return "blocked"

            if isinstance(action, Yield):
                return "yield"

            if isinstance(action, Exit):
                self._exit_task(task)
                return "exited"

            raise SimulationError(f"unknown action {action!r}")

    def _exit_task(self, task) -> None:
        cpu = task.cpu
        if cpu is not None:
            self._stop_running(cpu, task)
            self._runnable_delta(-1)
        task.state = _EXITED
        task.exited_us = self.engine.now
        self.n_live -= 1
        if task.deadline_us is not None and not task.rt_killed:
            self._rt_on_exit(task)

        parent = task.parent
        if parent is not None and parent.state is TaskState.BLOCKED:
            if parent.block_reason is BlockReason.CHILDREN:
                for c in parent.children:
                    if c.state is not _EXITED:
                        break
                else:
                    self._place_wakeup(parent, cpu if cpu is not None else 0)
        waiter = task.waited_by
        if waiter is not None and waiter.state is TaskState.BLOCKED \
                and waiter.block_reason is BlockReason.TASK \
                and waiter.waiting_for is task:
            waiter.waiting_for = None
            self._place_wakeup(waiter, cpu if cpu is not None else 0)

        if self.n_live == 0 and self.stop_when_idle:
            self.engine.stop("workload-complete")

    # ---- blocking and accounting ----------------------------------------

    def _block(self, task, reason) -> None:
        cpu = task.cpu
        if cpu is None:
            raise SimulationError(f"block of off-cpu {task}")
        self._stop_running(cpu, task)
        task.util_est = task.pelt.value
        task.state = (TaskState.SLEEPING if reason is BlockReason.TIMER
                      else TaskState.BLOCKED)
        task.block_reason = reason
        now = self.engine.now
        n_run = self.n_runnable - 1       # inline _runnable_delta(-1)
        self.n_runnable = n_run
        for fn in self.runnable_observers:
            fn(now, n_run)
        bl = self.rqs[cpu].blocked_load   # inline update(now, False) + add
        delta = now - bl.last_update_us
        if delta > 0:
            v = bl.value
            if v != 0.0:
                y = _DC.get(delta)
                if y is None:
                    y = _df(delta)
                bl.value = v * y
            bl.last_update_us = now
        bl.value = min(1024, bl.value + task.pelt.value * 0.5)
        self._c_blocked_val[cpu] = bl.value
        self._c_blocked_ts[cpu] = bl.last_update_us

    def _stop_running(self, cpu: int, task) -> None:
        now = self.engine.now
        cs = self.cpus[cpu]
        if cs.current is not task:
            raise SimulationError(f"{task} is not current on cpu {cpu}")
        self._account_current(cpu)
        ev = task.completion_event
        if ev is not None:
            elapsed = now - task.run_start_us
            consumed = elapsed * task.run_freq_mhz
            rem = task.remaining_cycles
            executed = rem if rem <= consumed else consumed
            rem -= executed
            task.remaining_cycles = rem
            task.total_cycles += executed
            self._c_trem[task.tid] = rem
            if not ev.cancelled:             # inline engine.cancel
                ev.cancelled = True
                self._queue._live -= 1
            task.completion_event = None
        task.total_runtime_us += now - cs.stint_start
        task.prev_cpu = cpu
        task.cpu = None
        task.last_ran_us = now
        cs.current = None
        self._c_running[cpu] = 0
        self._set_thread_activity(cpu, busy=False)
        self.tracer.end(cpu, now)
        self.rqs[cpu].last_busy_us = now
        self._c_last_busy[cpu] = now

    def _account_current(self, cpu: int) -> None:
        cs = self.cpus[cpu]
        curr = cs.current
        now = self.engine.now
        if curr is None:
            return
        tid = curr.tid
        delta = now - cs.vr_last_update
        if delta > 0:
            vr = curr.vruntime + delta
            curr.vruntime = vr
            self._c_tvr[tid] = vr
            cs.vr_last_update = now
            rq = self.rqs[cpu]
            if vr > rq.min_vruntime:
                rq.min_vruntime = vr
        p = curr.pelt                     # inline pelt.update(now, True)
        pd = now - p.last_update_us
        if pd > 0:
            y = _DC.get(pd)
            if y is None:
                y = _df(pd)
            v = p.value * y + 1024 * (1.0 - y)
            p.value = v
            p.last_update_us = now
            self._c_tpv[tid] = v
            self._c_tpts[tid] = now

    # ---- activity / frequency plumbing ----------------------------------

    def _set_thread_activity(self, cpu: int, busy: bool,
                             spinning: bool = False) -> None:
        now = self.engine.now
        rq = self.rqs[cpu]
        a = rq.busy_avg          # inline busy_avg.update(now, currently_busy)
        delta = now - a.last_update_us
        if delta > 0:
            v = a.value
            if rq.currently_busy:
                y = _DC.get(delta)
                if y is None:
                    y = _df(delta)
                a.value = v * y + 1024 * (1.0 - y)
            elif v != 0.0:
                y = _DC.get(delta)
                if y is None:
                    y = _df(delta)
                a.value = v * y
            a.last_update_us = now
            self._c_busy_val[cpu] = a.value
            self._c_busy_ts[cpu] = now
        rq.currently_busy = busy
        self._c_busy_now[cpu] = 1 if busy else 0
        freq = self.freq
        freq.set_thread_state(cpu, busy, spinning)
        pc = self.pc_of[cpu]
        cst = freq._cores[pc]
        self.energy.set_core_active(
            pc, cst.active_threads > 0 or cst.spinning_threads > 0, now)
        if self._gov_on_act:
            self.governor.on_activity_change(cpu)
        freq._reevaluate(pc)       # == notify_request_change(cpu)
        sib = self.sibling_of[cpu]
        if sib != cpu:
            if busy and self.cpus[sib].spinning:
                self._stop_spin(sib)
            self._reprice_running(sib)

    # ---- ticks -----------------------------------------------------------

    def _start_tick(self, cpu: int) -> None:
        cs = self.cpus[cpu]
        if cs.tick_event is None:
            jit = self.tick_jitter
            period = TICK_US if jit is None else max(1, TICK_US + jit())
            cs.tick_event = self.engine.after(
                period, _EK_TICK, self._tick, (cpu,))

    def _tick(self, cpu: int) -> None:
        cs = self.cpus[cpu]
        cs.tick_event = None
        curr = cs.current
        if curr is None:
            return
        self._account_current(cpu)
        if self._gov_on_tick:
            self.governor.on_tick(cpu)
        pc = self.pc_of[cpu]
        self.freq._reevaluate(pc)  # == notify_request_change(cpu)
        if self._pol_on_tick:
            self.policy.on_tick(cpu, self._c_mhz[pc])

        rq = self.rqs[cpu]
        if rq.nr_queued > 0:
            self._nohz_kick(cpu)
            nr = rq.nr_queued + 1
            slice_us = max(self.config.sched_latency_us // nr,
                           self.config.min_granularity_us)
            ran = self.engine.now - cs.stint_start
            if ran >= slice_us:
                self._preempt_current(cpu)
                if self.cpus[cpu].current is not None:
                    self._start_tick(cpu)
                return
        jit = self.tick_jitter
        period = TICK_US if jit is None else max(1, TICK_US + jit())
        cs.tick_event = self.engine.after(
            period, _EK_TICK, self._tick, (cpu,))

    def _nohz_kick(self, busy_cpu: int) -> None:
        if not self._newidle:
            return
        online = self.cpu_online
        running = self._c_running
        nrq = self._c_nrq
        pend = self._c_pending
        for c in self._die_span[busy_cpu]:
            if c != busy_cpu and online[c] and not running[c] \
                    and not nrq[c] and not pend[c]:
                self.engine.after(1, _EK_BALANCE, self._idle_pull, (c,))
                return

    # ---- load balancing --------------------------------------------------

    def _newidle_pull(self, cpu: int):
        nrq = self._c_nrq
        best = -1
        best_n = 0
        for other in self._die_span[cpu]:
            if other == cpu:
                continue
            n = nrq[other]
            if n > best_n:
                best, best_n = other, n
        if best < 0 or best_n < 1:
            return None
        task = self.rqs[best].steal_one()
        if task is None:
            return None
        task.n_migrations += 1
        if self.obs.enabled:
            self.obs.emit(self.engine.now, oev.SCHED_MIGRATE, cpu=cpu,
                          task=task.tid, value=best)
        return task

    # ---- placement -------------------------------------------------------

    def _commit_placement(self, task, cpu: int, kind) -> None:
        if not self.cpu_online[cpu]:
            cpu = self.least_loaded_online(cpu)
            self.metrics.counter("fault_placement_redirects").value += 1
        rq = self.rqs[cpu]
        n = rq.placement_pending + 1
        rq.placement_pending = n
        self._c_pending[cpu] = n
        hist = task.core_history          # inline record_core
        hist[1] = hist[0]
        hist[0] = cpu
        if self.obs.enabled:
            self.obs.emit(self.engine.now,
                          oev.SCHED_FORK if kind is _EK_FORK
                          else oev.SCHED_WAKEUP, cpu=cpu, task=task.tid)
        delay = self._placement_delay + self.policy.selection_cost_us
        self.engine.after(delay, kind, self._enqueue_placed, (task, cpu))

    def _enqueue_placed(self, task, cpu: int) -> None:
        rq = self.rqs[cpu]
        n = rq.placement_pending - 1
        rq.placement_pending = n
        self._c_pending[cpu] = n
        if task.state is _EXITED:
            # Destroyed by a core failure while the placement was in
            # flight: the enqueue lands on a corpse and is dropped.
            return
        if not self.cpu_online[cpu]:
            cpu = self.least_loaded_online(cpu)
            task.record_core(cpu)
            self.metrics.counter("fault_placement_redirects").value += 1
        self.enqueue(task, cpu)

    # ---- column-backed queries ------------------------------------------

    def nr_running(self, cpu: int) -> int:
        return self._c_nrq[cpu] + self._c_running[cpu]

    def cpu_is_idle(self, cpu: int) -> bool:
        return (self.cpu_online[cpu] and self._c_running[cpu] == 0
                and self._c_nrq[cpu] == 0)

    def cpu_last_used(self, cpu: int) -> int:
        if self._c_running[cpu]:
            return self.engine.now
        return self._c_last_busy[cpu]

    # ---- faults ----------------------------------------------------------

    def slow_running_task(self, cpu: int, factor: float) -> bool:
        changed = Kernel.slow_running_task(self, cpu, factor)
        if changed:
            task = self.cpus[cpu].current
            self._c_trem[task.tid] = task.remaining_cycles
        return changed


class FastCfsPolicy(CfsPolicy):
    """CFS placement over the SoA columns.

    Every helper below is the reference body with ``kernel.rqs[c].attr``
    chains replaced by column reads.  ``_search_any_idle`` goes through
    :meth:`EngineState.first_idle`, which is where the optional numpy
    layer vectorises wide scans.
    """

    def on_bind(self) -> None:
        self._bind_fast()

    def _bind_fast(self) -> None:
        """Capture column references; also used by wrapping policies whose
        ``on_bind`` assigns ``self._cfs.kernel`` directly."""
        k = self.kernel
        s = k.state
        self._state = s
        self._online = k.cpu_online
        self._running = s.running
        self._nrq = s.nr_queued
        self._pending = s.pending
        self._busy_val = s.busy_val
        self._busy_ts = s.busy_ts
        self._busy_now = s.busy_now
        self._blocked_val = s.blocked_val
        self._blocked_ts = s.blocked_ts
        self._die_of = k.die_of
        self._la_memo = None

    @property
    def name(self) -> str:
        # Results and metric prefixes must match the reference engine's.
        return "CfsPolicy"

    def select_cpu_fork(self, task, parent_cpu: int) -> int:
        # The domain walk recomputes a cpu's load once per hierarchy
        # level.  Nothing mutates between those reads (the walk is pure),
        # so memoising per placement returns the identical floats.
        self._la_memo = memo = {}
        try:
            return CfsPolicy.select_cpu_fork(self, task, parent_cpu)
        finally:
            self._la_memo = None
            memo.clear()

    def _load_avg(self, cpu: int, now: int) -> float:
        """``RunQueue.load_avg`` fused over the columns."""
        memo = self._la_memo
        if memo is not None:
            cached = memo.get(cpu)
            if cached is not None:
                return cached
        v = self._busy_val[cpu]
        delta = now - self._busy_ts[cpu]
        if delta > 0:
            if self._busy_now[cpu]:
                y = _DC.get(delta)
                if y is None:
                    y = _df(delta)
                v = v * y + 1024 * (1.0 - y)
            elif v != 0.0:
                y = _DC.get(delta)
                if y is None:
                    y = _df(delta)
                v = v * y
        bv = self._blocked_val[cpu]
        if bv != 0.0:
            d2 = now - self._blocked_ts[cpu]
            if d2 > 0:
                y = _DC.get(d2)
                if y is None:
                    y = _df(d2)
                bv = bv * y
        load = v + bv
        if memo is not None:
            memo[cpu] = load
        return load

    def _find_idlest_group(self, groups, current_cpu: int):
        now = self.kernel.engine.now
        online = self._online
        running = self._running
        nrq = self._nrq
        load_avg = self._load_avg
        local = None
        best = None
        best_key = None
        for group in groups:
            if current_cpu in group:
                local = group
                continue
            idle_cpus = 0
            nr_run = 0
            load = 0.0
            n_online = 0
            for c in group:
                if not online[c]:
                    continue
                n_online += 1
                q = nrq[c]
                if not running[c]:
                    if q == 0:
                        idle_cpus += 1
                    nr_run += q
                else:
                    nr_run += q + 1
                load += load_avg(c, now)
            if n_online == 0:
                continue    # hotplugged-out group: not a placement target
            key = (-idle_cpus, nr_run, int(load / 32.0))
            if best_key is None or key < best_key:
                best, best_key = group, key
        if local is None:
            return best
        if best is None:
            return local
        local_idle = 0
        for c in local:
            if online[c] and not running[c] and nrq[c] == 0:
                local_idle += 1
        if local_idle >= -best_key[0]:
            return local
        return best

    def _find_idlest_cpu(self, group, from_cpu: int) -> int:
        kernel = self.kernel
        now = kernel.engine.now
        online = self._online
        running = self._running
        nrq = self._nrq
        pend = self._pending
        load_avg = self._load_avg
        check_pending = self.check_pending_default
        best = None
        best_key = None
        for rank, c in enumerate(_rotate(group, from_cpu)):
            if not online[c]:
                continue
            q = nrq[c]
            busy = running[c]
            if not busy and q == 0 \
                    and not (check_pending and pend[c] > 0):
                key = (0, 0, int(load_avg(c, now) / 32.0), rank)
            else:
                key = (1, q + (1 if busy else 0),
                       int(load_avg(c, now) / 32.0), rank)
            if best_key is None or key < best_key:
                best, best_key = c, key
        if best is None:
            return kernel.least_loaded_online(from_cpu)
        return best

    def _wake_affine(self, task, prev: int, waker: int) -> int:
        kernel = self.kernel
        online = self._online
        if not online[prev]:
            return waker if online[waker] \
                else kernel.least_loaded_online(waker)
        if not online[waker]:
            return prev
        if prev == waker:
            return prev
        now = kernel.engine.now
        running = self._running
        nrq = self._nrq
        die_of = self._die_of
        if not running[waker] and nrq[waker] == 0 \
                and die_of[prev] == die_of[waker]:
            if not running[prev] and nrq[prev] == 0:
                return prev
            return waker
        this_load = self._load_avg(waker, now) + task.util_est
        prev_load = self._load_avg(prev, now)
        if this_load * 1.17 < prev_load:
            return waker
        return prev

    def _usable_idle(self, cpu: int, check_pending: bool) -> bool:
        if not self._online[cpu]:
            return False
        if self._running[cpu] or self._nrq[cpu] != 0:
            return False
        if check_pending and self._pending[cpu] > 0:
            return False
        return True

    def _search_idle_core(self, die, target: int, check_pending: bool):
        kernel = self.kernel
        pc_of = kernel.pc_of
        siblings_of = kernel.smt_siblings_of
        online = self._online
        running = self._running
        nrq = self._nrq
        pend = self._pending
        seen_cores = set()
        for c in _rotate(tuple(die), target):
            pc = pc_of[c]
            if pc in seen_cores:
                continue
            seen_cores.add(pc)
            sibs = siblings_of[c]
            all_idle = True
            for s in sibs:
                if not online[s] or running[s] or nrq[s] \
                        or (check_pending and pend[s] > 0):
                    all_idle = False
                    break
            if all_idle:
                return min(sibs)
        return None

    def _search_any_idle(self, die, target: int, check_pending: bool,
                         unbounded: bool = False):
        ordered = _rotate(tuple(die), target)
        limit = None if unbounded else WAKEUP_SCAN_LIMIT
        c = self._state.first_idle(ordered, check_pending, limit)
        return None if c < 0 else c


class FastNestPolicy(NestPolicy):
    """Nest placement with column-fused idle checks and searches."""

    def __init__(self, params: NestParams = DEFAULT_PARAMS) -> None:
        super().__init__(params)
        self._cfs = FastCfsPolicy()

    def on_bind(self) -> None:
        NestPolicy.on_bind(self)
        self._cfs._bind_fast()
        k = self.kernel
        s = k.state
        self._online = k.cpu_online
        self._running = s.running
        self._nrq = s.nr_queued
        self._pending = s.pending
        self._last_busy = s.last_busy
        self._die_of = k.die_of
        self._check_flag = self.params.placement_flag

    def _idle(self, cpu: int) -> bool:
        if not (self._online[cpu] and self._running[cpu] == 0
                and self._nrq[cpu] == 0):
            return False
        if self._check_flag and self._pending[cpu] > 0:
            return False
        return True

    def _search_primary(self, start: int, task, is_fork: bool):
        primary = self.primary
        if not primary:
            return None, 0
        p = self.params
        now = self.kernel.engine.now
        stale_cutoff_us = int(p.p_remove_ticks * TICK_US)

        die_of = self._die_of
        start_die = die_of[start]
        same_die = [c for c in primary if die_of[c] == start_die]
        other = [c for c in primary if die_of[c] != start_die]
        candidates = list(_rotate(tuple(same_die), start)) + sorted(other)

        prefer = []
        if p.prev_core_first and not is_fork and task.prev_cpu is not None \
                and task.prev_cpu in primary:
            prefer = [task.prev_cpu]

        online = self._online
        running = self._running
        nrq = self._nrq
        pend = self._pending
        check_flag = self._check_flag
        last_busy = self._last_busy
        compaction = p.compaction_enabled
        examined = 0
        for cpu in prefer + candidates:
            examined += 1
            if not online[cpu] or running[cpu] or nrq[cpu] \
                    or (check_flag and pend[cpu] > 0):
                continue
            if compaction and cpu not in prefer:
                # The cpu is idle (running column is 0), so the reference's
                # cpu_last_used(cpu) is exactly the last_busy column.
                idle_for = now - last_busy[cpu]
                if idle_for >= stale_cutoff_us:
                    self._demote(cpu)
                    continue
            return cpu, examined
        return None, examined

    def _search_reserve(self, start: int):
        reserve = self.reserve
        if not reserve:
            return None, 0
        home = self.home_cpu if self.home_cpu is not None else start
        die_of = self._die_of
        start_die = die_of[start]
        same_die = [c for c in reserve if die_of[c] == start_die]
        other = [c for c in reserve if die_of[c] != start_die]
        online = self._online
        running = self._running
        nrq = self._nrq
        pend = self._pending
        check_flag = self._check_flag
        examined = 0
        for cpu in list(_rotate(tuple(same_die), home)) \
                + list(_rotate(tuple(other), home)):
            examined += 1
            if online[cpu] and not running[cpu] and not nrq[cpu] \
                    and not (check_flag and pend[cpu] > 0):
                return cpu, examined
        return None, examined


class FastSmovePolicy(SmovePolicy):
    """S_move with the fused CFS fallback."""

    def __init__(self, move_delay_us: int = 50) -> None:
        super().__init__(move_delay_us)
        self._cfs = FastCfsPolicy()

    def on_bind(self) -> None:
        SmovePolicy.on_bind(self)
        self._cfs._bind_fast()


#: Schedulers with a bit-identical fast-engine variant, derived from the
#: policy registry (an entry is fast iff it registered a
#: ``fast_factory``).  Anything else (FT-RT, scx_nest) must run on the
#: reference engine; the differential harness keys off this tuple when
#: deciding whether a scenario is parity-checkable.
from ..sched.registry import fast_scheduler_names, make_registered_fast_policy

FAST_SCHEDULERS = fast_scheduler_names()


def make_fast_policy(name: str, nest_params=None):
    """Instantiate the fast variant of a selection policy by short name.

    Registry entries without a fast factory refuse with the standard
    declared-refusal error (sched/registry.py)."""
    return make_registered_fast_policy(name, nest_params)
