"""The discrete-event simulation driver.

The engine owns the clock and the event queue and runs the main loop.  All
other components (frequency model, kernel, workloads, metrics) schedule
callbacks through it.  The engine knows nothing about scheduling semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..obs.log import EventLog
from .clock import Clock
from .events import Event, EventKind
from .queue import EventQueue
from .rng import RngRegistry

#: Version salt of the simulation semantics.  The content-addressed result
#: cache (experiments/cache.py) mixes this into every key, so bumping it
#: invalidates all cached results at once.  Bump whenever a change alters
#: what a simulation *computes* (event ordering, timing, RNG use, metrics),
#: not for pure refactors or speedups that keep runs bit-identical.
ENGINE_VERSION = "1"


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Engine:
    """Event loop: pops events in time order and dispatches their callbacks."""

    def __init__(self, seed: int = 0) -> None:
        self.clock = Clock()
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.events_processed = 0
        #: The run's structured observability log (obs/).  Disabled until a
        #: sink is attached; every component that can see the engine (the
        #: kernel, policies via the kernel, the frequency model) emits
        #: through it behind an ``if obs.enabled:`` guard, so a run with no
        #: sinks allocates no event records.
        self.obs = EventLog()
        #: Mirror of ``clock.now``, kept in sync by the run loop.  A plain
        #: attribute: ``engine.now`` is the single hottest read in the
        #: simulator and a property call per read showed up in profiles.
        self.now = 0
        self._stopped = False
        self._stop_reason: Optional[str] = None

    def at(
        self,
        time: int,
        kind: EventKind,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"scheduling into the past: {time} < {self.clock.now}")
        return self.queue.schedule(time, kind, callback, args)

    def after(
        self,
        delay: int,
        kind: EventKind,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.queue.schedule(self.clock.now + delay, kind, callback, args)

    def cancel(self, ev: Event) -> None:
        self.queue.cancel(ev)

    def stop(self, reason: str = "requested") -> None:
        """Ask the run loop to stop after the current event."""
        self._stopped = True
        self._stop_reason = reason

    @property
    def stop_reason(self) -> Optional[str]:
        return self._stop_reason

    def run(self, until: Optional[int] = None, max_events: int = 200_000_000) -> int:
        """Run until the queue drains, ``until`` is reached, or stop().

        Returns the simulated end time in microseconds.
        """
        self._stopped = False
        self._stop_reason = None
        queue = self.queue
        clock = self.clock
        processed = 0
        while not self._stopped:
            if until is not None:
                nxt = queue.peek_time()
                if nxt is None or nxt > until:
                    clock.advance_to(max(until, clock.now))
                    self.now = clock.now
                    self._stop_reason = "until"
                    break
            ev = queue.pop()
            if ev is None:
                self._stop_reason = "drained"
                break
            clock.advance_to(ev.time)
            self.now = ev.time
            ev.callback(*ev.args)
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible livelock")
        self.events_processed += processed
        return clock.now
