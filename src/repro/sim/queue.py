"""Binary-heap event queue with O(1) cancellation.

The heap stores flat ``(time, kind, seq, event)`` tuples rather than the
:class:`Event` objects themselves.  The sequence number is unique, so heap
comparisons always resolve within the first three integers and never fall
through to the event object — every sift comparison is a C-level int
compare instead of a Python-level ``Event.__lt__`` call, which is the
single hottest operation of a simulation.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from .events import Event, EventKind


class EventQueue:
    """Time-ordered queue of :class:`Event` objects.

    Simultaneous events pop in (kind, sequence) order; the sequence number is
    assigned at scheduling time, so insertion order decides final ties.  The
    queue never reorders events of the same key, which keeps simulations
    deterministic across runs and platforms.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: int,
        kind: EventKind,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> Event:
        """Add an event; returns a handle usable for cancellation."""
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, kind, seq, callback, args)
        heappush(self._heap, (time, int(kind), seq, ev))
        self._live += 1
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelled events stay in the heap as tombstones and are dropped
        when they reach the top, which is O(1) here and keeps the heap
        simple.
        """
        if not ev.cancelled:
            ev.cancelled = True
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty."""
        heap = self._heap
        while heap:
            ev = heappop(heap)[3]
            if not ev.cancelled:
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
        return heap[0][0] if heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
