"""Binary-heap event queue with O(1) cancellation."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .events import Event, EventKind


class EventQueue:
    """Time-ordered queue of :class:`Event` objects.

    Simultaneous events pop in (kind, sequence) order; the sequence number is
    assigned at scheduling time, so insertion order decides final ties.  The
    queue never reorders events of the same key, which keeps simulations
    deterministic across runs and platforms.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: int,
        kind: EventKind,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> Event:
        """Add an event; returns a handle usable for cancellation."""
        ev = Event(time, kind, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        if not ev.cancelled:
            ev.cancel()
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if not ev.cancelled:
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
