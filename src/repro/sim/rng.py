"""Seeded random streams.

Every stochastic decision in the simulator draws from a *named* stream, so
that adding randomness to one subsystem never perturbs another and a run is
fully determined by its base seed.  Streams are plain ``random.Random``
instances seeded by hashing (base seed, name) — no global state.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(base_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{base_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named deterministic random streams."""

    __slots__ = ("base_seed", "_streams")

    def __init__(self, base_seed: int = 0) -> None:
        self.base_seed = base_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.base_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive an independent registry (e.g. per workload instance)."""
        return RngRegistry(_derive_seed(self.base_seed, f"fork:{name}"))
