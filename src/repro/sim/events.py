"""Event records for the discrete-event engine.

Events carry an explicit priority class so that simultaneous events are
processed in a deterministic, semantically sensible order: e.g. a task's
compute completion at time *t* is handled before the tick at time *t*, and
wakeups are handled before new forks.  Ties within a class break on a
monotonically increasing sequence number, making runs fully deterministic.
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class EventKind(enum.IntEnum):
    """Priority classes for simultaneous events (lower value runs first)."""

    COMPLETION = 0     # running task finished its compute slice
    IO = 1             # sleep/IO expiry, message arrival
    WAKEUP = 2         # task wakeup placement
    FORK = 3           # task fork placement
    PREEMPT = 4        # preemption / resched
    SPIN_STOP = 5      # warm-core spin timeout
    FREQ = 6           # frequency ramp step
    TICK = 7           # scheduler tick
    BALANCE = 8        # load balancing pass
    CONTROL = 9        # experiment control callbacks (sampling, stop)


class Event:
    """A schedulable callback.

    Cancellation is by flag: cancelled events stay in the heap and are
    skipped when popped, which is O(1) and keeps the heap simple.
    """

    __slots__ = ("time", "kind", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: int,
        kind: EventKind,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.kind = kind
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    @property
    def sort_key(self) -> tuple[int, int, int]:
        return (self.time, int(self.kind), self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, {self.kind.name}, seq={self.seq}{state})"
