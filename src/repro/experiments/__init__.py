"""Experiment harness, per-figure registry, canonical configurations."""

from .configs import FAST, FULL, HarnessConfig, STANDARD
from .registry import (EXPERIMENTS, Experiment, FIGURE_MACHINES,
                       all_experiments, get_experiment)
from .runner import (BASELINE, Comparison, ComboStats, STANDARD_COMBOS,
                     compare, make_governor, make_policy, run_experiment)

__all__ = [
    "FAST", "STANDARD", "FULL", "HarnessConfig",
    "EXPERIMENTS", "Experiment", "FIGURE_MACHINES",
    "all_experiments", "get_experiment",
    "BASELINE", "STANDARD_COMBOS", "Comparison", "ComboStats",
    "compare", "make_governor", "make_policy", "run_experiment",
]
