"""Canonical experiment configurations.

The benchmark harness keeps its knobs here so tests, examples and benches
agree on scales and seeds.  ``FAST`` trims repetition for CI-style runs;
``FULL`` mirrors the paper's procedure more closely (more seeds, larger
workload scales).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class HarnessConfig:
    """Repetition and scale settings for a benchmark campaign."""

    seeds: Tuple[int, ...]
    workload_scale: float      # multiplier on workload sizes
    machines: Tuple[str, ...]  # machine keys to sweep


#: Quick mode: used by the pytest benchmarks so the whole suite stays
#: tractable on a laptop.
FAST = HarnessConfig(seeds=(1, 2), workload_scale=0.6,
                     machines=("5218_2s", "e78870_4s"))

#: Standard mode: all four paper machines, three seeds.
STANDARD = HarnessConfig(seeds=(1, 2, 3), workload_scale=1.0,
                         machines=("6130_2s", "6130_4s", "5218_2s",
                                   "e78870_4s"))

#: Full mode: closest to the paper's 10-run procedure.
FULL = HarnessConfig(seeds=tuple(range(1, 11)), workload_scale=1.0,
                     machines=("6130_2s", "6130_4s", "5218_2s", "e78870_4s"))
