"""Per-figure experiment registry (the DESIGN.md experiment index in code).

Each entry maps a paper artefact (table or figure) to the workloads,
machines and scheduler/governor combinations that regenerate it, and to the
benchmark module that prints it.  ``benchmarks/`` imports this registry so
the index cannot drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..workloads.configure import configure_names
from ..workloads.dacapo import dacapo_names
from ..workloads.nas import nas_names
from ..workloads.phoronix import fig13_names

#: Machines used by most figures, in the paper's panel order.
FIGURE_MACHINES: Tuple[str, ...] = ("6130_2s", "6130_4s", "5218_2s", "e78870_4s")


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artefact."""

    id: str                       # e.g. "fig5"
    artefact: str                 # "Figure 5" / "Table 4"
    description: str
    workloads: Tuple[str, ...]    # workload names or family description
    machines: Tuple[str, ...]
    combos: Tuple[Tuple[str, str], ...]
    bench: str                    # benchmark file that regenerates it
    expected_shape: str           # what must hold for the reproduction


_STANDARD = (("cfs", "schedutil"), ("cfs", "performance"),
             ("nest", "schedutil"), ("nest", "performance"))
_WITH_SMOVE = _STANDARD + (("smove", "schedutil"),)

EXPERIMENTS: Dict[str, Experiment] = {}


def _register(exp: Experiment) -> None:
    EXPERIMENTS[exp.id] = exp


_register(Experiment(
    id="table1", artefact="Table 1",
    description="Chosen values of the Nest parameters",
    workloads=(), machines=(), combos=(),
    bench="benchmarks/test_table1_params.py",
    expected_shape="P_remove=2 ticks, R_max=5, R_impatient=2, S_max=2 ticks"))

_register(Experiment(
    id="table2", artefact="Table 2",
    description="Hardware characteristics of the four test machines",
    workloads=(), machines=FIGURE_MACHINES, combos=(),
    bench="benchmarks/test_table2_machines.py",
    expected_shape="4 machines with the paper's topology and frequency ranges"))

_register(Experiment(
    id="table3", artefact="Table 3",
    description="Turbo frequencies by active-core count",
    workloads=(), machines=FIGURE_MACHINES, combos=(),
    bench="benchmarks/test_table3_turbo.py",
    expected_shape="non-increasing turbo ceilings matching the paper's rows"))

_register(Experiment(
    id="fig2", artefact="Figure 2",
    description="Core frequency trace, LLVM configure (Ninja) on the 5218",
    workloads=("configure-llvm_ninja",), machines=("5218_2s",),
    combos=(("cfs", "schedutil"), ("nest", "schedutil")),
    bench="benchmarks/test_fig2_case_study.py",
    expected_shape="CFS disperses over many cores at mixed frequencies; "
                   "Nest uses ~2 cores mostly at the highest frequencies"))

_register(Experiment(
    id="fig3", artefact="Figure 3",
    description="Underload trace for LLVM configure on the 5218",
    workloads=("configure-llvm_ninja",), machines=("5218_2s",),
    combos=(("cfs", "schedutil"), ("nest", "schedutil")),
    bench="benchmarks/test_fig3_underload_trace.py",
    expected_shape="substantial CFS underload, nearly none under Nest"))

_register(Experiment(
    id="fig4", artefact="Figure 4",
    description="Underload per second, configure suite",
    workloads=tuple(f"configure-{n}" for n in configure_names()),
    machines=FIGURE_MACHINES, combos=_STANDARD,
    bench="benchmarks/test_fig4_configure_underload.py",
    expected_shape="Nest nearly eliminates underload on every machine"))

_register(Experiment(
    id="fig5", artefact="Figure 5",
    description="Configure-suite speedups vs CFS-schedutil",
    workloads=tuple(f"configure-{n}" for n in configure_names()),
    machines=FIGURE_MACHINES, combos=_WITH_SMOVE,
    bench="benchmarks/test_fig5_configure_speedup.py",
    expected_shape="Nest >5% everywhere except nodejs; Smove <10%; on the "
                   "E7 CFS-performance rivals Nest-schedutil"))

_register(Experiment(
    id="fig6", artefact="Figure 6",
    description="Configure-suite frequency distributions",
    workloads=tuple(f"configure-{n}" for n in configure_names()),
    machines=FIGURE_MACHINES, combos=_STANDARD,
    bench="benchmarks/test_fig6_configure_freqdist.py",
    expected_shape="Nest shifts busy time into the highest frequency bins"))

_register(Experiment(
    id="fig7", artefact="Figure 7",
    description="Configure-suite CPU energy reduction",
    workloads=tuple(f"configure-{n}" for n in configure_names()),
    machines=FIGURE_MACHINES, combos=_STANDARD,
    bench="benchmarks/test_fig7_configure_energy.py",
    expected_shape="Nest reduces CPU energy (up to ~20%) by finishing sooner"))

_register(Experiment(
    id="fig8_9", artefact="Figures 8-9",
    description="h2 execution traces on the 4-socket 6130",
    workloads=("dacapo-h2",), machines=("6130_4s",),
    combos=(("cfs", "schedutil"), ("nest", "schedutil")),
    bench="benchmarks/test_fig8_9_h2_trace.py",
    expected_shape="CFS uses far more cores at lower frequency bins than Nest"))

_register(Experiment(
    id="fig10", artefact="Figure 10",
    description="DaCapo speedups vs CFS-schedutil",
    workloads=tuple(f"dacapo-{n}" for n in dacapo_names()),
    machines=FIGURE_MACHINES, combos=_STANDARD,
    bench="benchmarks/test_fig10_dacapo_speedup.py",
    expected_shape="big Nest wins on h2/tradebeans/graphchi-eval; few-task "
                   "apps within ±8%"))

_register(Experiment(
    id="fig11", artefact="Figure 11",
    description="DaCapo frequency distributions",
    workloads=tuple(f"dacapo-{n}" for n in dacapo_names()),
    machines=FIGURE_MACHINES, combos=_STANDARD,
    bench="benchmarks/test_fig11_dacapo_freqdist.py",
    expected_shape="higher bins under Nest for the high-underload apps"))

_register(Experiment(
    id="fig12", artefact="Figure 12",
    description="NAS speedups vs CFS-schedutil",
    workloads=tuple(f"nas-{n}.C" for n in nas_names()),
    machines=FIGURE_MACHINES, combos=_STANDARD,
    bench="benchmarks/test_fig12_nas_speedup.py",
    expected_shape="near parity on the 2-socket machines; Nest never badly "
                   "hurts; speedups on the E7 (except cg/ep)"))

_register(Experiment(
    id="table4", artefact="Table 4",
    description="Phoronix multicore overview (speedup bands)",
    workloads=("suite population (seeded)",),
    machines=("6130_2s", "e78870_4s"),
    combos=(("cfs", "performance"), ("nest", "schedutil")),
    bench="benchmarks/test_table4_phoronix_overview.py",
    expected_shape="most tests in the 'same' band; more >5% winners on E7"))

_register(Experiment(
    id="fig13", artefact="Figure 13",
    description="Phoronix tests with >=20% effects",
    workloads=tuple(f"phoronix-{n}" for n in fig13_names()),
    machines=("5218_2s", "e78870_4s"),
    combos=(("cfs", "schedutil"), ("cfs", "performance"),
            ("nest", "schedutil")),
    bench="benchmarks/test_fig13_phoronix_speedup.py",
    expected_shape="zstd: CFS-perf & Nest win on Speed Shift, only "
                   "CFS-perf on E7; libavif: Nest slower; oidn/cpuminer: flat"))

_register(Experiment(
    id="ablation_configure", artefact="Section 5.2 (ablation)",
    description="Feature/parameter ablation on llvm_ninja and mplayer",
    workloads=("configure-llvm_ninja", "configure-mplayer"),
    machines=("5218_2s", "e78870_4s"),
    combos=(("nest", "schedutil"),),
    bench="benchmarks/test_ablation_configure.py",
    expected_shape="removing the reserve nest degrades configure by ~5-16%"))

_register(Experiment(
    id="ablation_dacapo", artefact="Section 5.3 (ablation)",
    description="Feature ablation on h2/graphchi-eval/tradebeans",
    workloads=("dacapo-h2", "dacapo-graphchi-eval", "dacapo-tradebeans"),
    machines=("6130_4s",),
    combos=(("nest", "schedutil"),),
    bench="benchmarks/test_ablation_dacapo.py",
    expected_shape="removing spinning costs the most (paper: 10-26%)"))

_register(Experiment(
    id="other_hackbench", artefact="Section 5.6 (hackbench/schbench)",
    description="Scheduling microbenchmarks",
    workloads=("hackbench", "schbench"), machines=("5218_2s",),
    combos=(("cfs", "schedutil"), ("nest", "schedutil")),
    bench="benchmarks/test_other_hackbench_schbench.py",
    expected_shape="hackbench slower under Nest; schbench has no clear winner"))

_register(Experiment(
    id="other_servers", artefact="Section 5.6 (servers)",
    description="Server workloads on the 2-socket 6130",
    workloads=("apache-siege", "nginx", "leveldb", "redis"),
    machines=("6130_2s",),
    combos=(("cfs", "schedutil"), ("nest", "schedutil")),
    bench="benchmarks/test_other_servers.py",
    expected_shape="apache-siege degrades with concurrency; nginx flat; "
                   "leveldb/redis improve"))

_register(Experiment(
    id="other_multiapp", artefact="Section 5.6 (multi-application)",
    description="zstd and libgav1 running concurrently",
    workloads=("multi:zstd+libgav1",), machines=("6130_2s",),
    combos=(("cfs", "schedutil"), ("nest", "schedutil")),
    bench="benchmarks/test_other_multiapp.py",
    expected_shape="both applications still improve under Nest"))

_register(Experiment(
    id="other_monosocket", artefact="Section 5.6 (mono-socket)",
    description="Configure/DaCapo/NAS on the 5220 and the Ryzen 4650G",
    workloads=("configure-llvm_ninja", "dacapo-h2", "nas-mg.C"),
    machines=("5220_1s", "ryzen_4650g"),
    combos=_STANDARD,
    bench="benchmarks/test_other_monosocket.py",
    expected_shape="configure speedups persist; NAS unchanged"))


def specs_for(
    exp: Experiment,
    seeds: Sequence[int] = (1,),
    scale: float = 1.0,
    machines: Sequence[str] = (),
) -> List["RunSpec"]:
    """Expand a registry entry into the RunSpecs that regenerate it.

    The sweep covers (workload × machine × combo × seed) in registry
    order, which a :class:`~repro.experiments.parallel.SweepExecutor` can
    run in parallel and cache.  Workload entries that are descriptive
    rather than buildable (e.g. Table 4's "suite population") are skipped;
    an experiment with no buildable workloads yields no specs.
    """
    from ..workloads.catalog import make_workload
    from .parallel import RunSpec

    out: List[RunSpec] = []
    for machine in (tuple(machines) or exp.machines):
        for workload in exp.workloads:
            try:
                make_workload(workload)
            except KeyError:
                continue
            for scheduler, governor in exp.combos:
                for seed in seeds:
                    out.append(RunSpec(workload=workload, machine=machine,
                                       scheduler=scheduler, governor=governor,
                                       seed=seed, scale=scale))
    return out


def reference_spec(exp: Experiment, seed: int = 1, scale: float = 1.0,
                   machine: Optional[str] = None) -> Optional["RunSpec"]:
    """The single representative run used to *trace* an experiment.

    Picks the experiment's first buildable workload on its first machine
    (or ``machine``), preferring a Nest combo so the trace shows the nest
    mechanisms; returns ``None`` when the entry has nothing buildable
    (pure tables).  The spec records the execution trace.
    """
    from ..workloads.catalog import make_workload
    from .parallel import RunSpec

    combos = exp.combos or (("nest", "schedutil"),)
    scheduler, governor = next(
        (c for c in combos if c[0] == "nest"), combos[0])
    machines = (machine,) if machine else exp.machines
    for mk in machines:
        for workload in exp.workloads:
            try:
                make_workload(workload)
            except KeyError:
                continue
            return RunSpec(workload=workload, machine=mk,
                           scheduler=scheduler, governor=governor,
                           seed=seed, scale=scale, record_trace=True)
    return None


def all_experiments() -> List[Experiment]:
    return list(EXPERIMENTS.values())


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {sorted(EXPERIMENTS)}") from None
