"""Command-line interface: run experiments without writing Python.

Usage (installed as ``python -m repro`` or the ``nest-repro`` script)::

    python -m repro list                 # machines, workloads, experiments
    python -m repro run --workload configure-llvm_ninja \
        --machine 5218_2s --scheduler nest --governor schedutil
    python -m repro compare --workload dacapo-h2 --machine 6130_4s
    python -m repro describe fig5        # registry entry for an artefact
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis.tables import pct, render_table
from ..hw.machines import ALL_MACHINES, get_machine
from ..workloads.base import Workload
from ..workloads.configure import ConfigureWorkload, configure_names
from ..workloads.dacapo import DacapoWorkload, dacapo_names
from ..workloads.messaging import HackbenchWorkload
from ..workloads.nas import NasWorkload, nas_names
from ..workloads.phoronix import PhoronixWorkload, fig13_names
from ..workloads.servers import leveldb, nginx, redis
from .registry import EXPERIMENTS, get_experiment
from .runner import STANDARD_COMBOS, compare, run_experiment


def make_workload(name: str, scale: float = 1.0) -> Workload:
    """Build a workload from its canonical name (see ``list``)."""
    if name.startswith("configure-"):
        return ConfigureWorkload(name.removeprefix("configure-"), scale=scale)
    if name.startswith("dacapo-"):
        return DacapoWorkload(name.removeprefix("dacapo-"), scale=scale)
    if name.startswith("nas-"):
        kern = name.removeprefix("nas-").removesuffix(".C")
        return NasWorkload(kern, scale=scale)
    if name.startswith("phoronix-"):
        return PhoronixWorkload(name.removeprefix("phoronix-"), scale=scale)
    if name == "hackbench":
        return HackbenchWorkload()
    simple = {"nginx": nginx, "leveldb": leveldb, "redis": redis}
    if name in simple:
        return simple[name]()
    raise KeyError(f"unknown workload {name!r}; try 'list'")


def workload_names() -> List[str]:
    out = [f"configure-{n}" for n in configure_names()]
    out += [f"dacapo-{n}" for n in dacapo_names()]
    out += [f"nas-{n}" for n in nas_names()]
    out += [f"phoronix-{n}" for n in fig13_names()]
    out += ["hackbench", "nginx", "leveldb", "redis"]
    return out


def _cmd_list(args) -> int:
    print("machines:")
    for key, m in ALL_MACHINES.items():
        print(f"  {key:12s} {m.describe()}")
    print("\nworkloads:")
    for name in workload_names():
        print(f"  {name}")
    print("\nexperiments (registry):")
    for exp_id, exp in EXPERIMENTS.items():
        print(f"  {exp_id:20s} {exp.artefact}: {exp.description}")
    return 0


def _cmd_run(args) -> int:
    wl = make_workload(args.workload, scale=args.scale)
    res = run_experiment(wl, get_machine(args.machine), args.scheduler,
                         args.governor, seed=args.seed)
    print(res.brief())
    if args.verbose and res.freq_dist is not None:
        for label, frac in res.freq_dist.as_dict().items():
            if frac >= 0.005:
                print(f"  {label}: {frac:.1%}")
    return 0


def _cmd_compare(args) -> int:
    cmp = compare(lambda: make_workload(args.workload, scale=args.scale),
                  get_machine(args.machine), combos=STANDARD_COMBOS,
                  seeds=tuple(range(1, args.seeds + 1)))
    rows = []
    for (sched, gov), stats in cmp.combos.items():
        rows.append([
            stats.label,
            f"{stats.mean_makespan_us / 1e6:.4f}s",
            pct(cmp.speedup_of(sched, gov)),
            f"{stats.mean_energy_j:.1f}J",
            pct(cmp.energy_savings_of(sched, gov)),
            f"{stats.mean_underload_per_s:.2f}",
        ])
    print(render_table(
        ["scheduler", "time", "speedup", "energy", "savings", "underload/s"],
        rows, title=f"{cmp.workload} on {cmp.machine} "
                    f"({args.seeds} seeds, vs CFS-schedutil)"))
    return 0


def _cmd_describe(args) -> int:
    exp = get_experiment(args.experiment)
    print(f"{exp.artefact}: {exp.description}")
    print(f"  bench:     {exp.bench}")
    print(f"  machines:  {', '.join(exp.machines) or '-'}")
    print(f"  combos:    {', '.join('-'.join(c) for c in exp.combos) or '-'}")
    print(f"  expected:  {exp.expected_shape}")
    if exp.workloads:
        print(f"  workloads: {', '.join(exp.workloads)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="nest-repro",
        description="Reproduction of 'OS Scheduling with Nest' (EuroSys'22)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list machines, workloads, experiments") \
       .set_defaults(fn=_cmd_list)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("--workload", required=True)
    run_p.add_argument("--machine", default="5218_2s")
    run_p.add_argument("--scheduler", default="nest",
                       choices=["cfs", "nest", "smove"])
    run_p.add_argument("--governor", default="schedutil",
                       choices=["schedutil", "performance"])
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--verbose", action="store_true")
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser("compare",
                           help="compare schedulers on one workload")
    cmp_p.add_argument("--workload", required=True)
    cmp_p.add_argument("--machine", default="5218_2s")
    cmp_p.add_argument("--seeds", type=int, default=3)
    cmp_p.add_argument("--scale", type=float, default=1.0)
    cmp_p.set_defaults(fn=_cmd_compare)

    desc_p = sub.add_parser("describe", help="show a registry entry")
    desc_p.add_argument("experiment")
    desc_p.set_defaults(fn=_cmd_describe)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
