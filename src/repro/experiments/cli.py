"""Command-line interface: run experiments without writing Python.

Usage (installed as ``python -m repro`` or the ``nest-repro`` script)::

    python -m repro list                 # machines, workloads, experiments
    python -m repro run --workload configure-llvm_ninja \
        --machine 5218_2s --scheduler nest --governor schedutil \
        --trace out.json                 # Perfetto trace (ui.perfetto.dev)
    python -m repro trace fig2 --scale 0.5   # text digest of a traced run
    python -m repro compare --workload dacapo-h2 --machine 6130_4s --jobs 8
    python -m repro sweep fig5 --seeds 2 --scale 0.5   # registry sweep
    python -m repro cache stats          # result-cache maintenance
    python -m repro obs report           # last sweep's observability report
    python -m repro obs dashboard        # self-contained HTML dashboard
    python -m repro obs analyze fig2 --scale 0.3   # trace-analysis report
    python -m repro obs query fig2 --kind place --cpu 3   # event queries
    python -m repro history list         # archived sweeps (sqlite-backed)
    python -m repro history diff last    # regression gate vs previous sweep
    python -m repro history export-trajectory --record perf.json --pr 7 \
        --append BENCH_trajectory.json   # generated perf-trajectory entries
    python -m repro describe fig5        # registry entry for an artefact
    python -m repro verify fuzz --runs 200 --seed 1   # invariant fuzzing
    python -m repro verify replay repro.json          # re-run a saved repro

Sweeping commands (``compare``, ``sweep``) parallelise over worker
processes (``--jobs`` / ``$REPRO_JOBS``, default: all cpus), consult
the content-addressed result cache under ``.repro-cache/`` unless
``--no-cache`` is given, and show a live view with ``--progress``
(``--progress=plain`` for CI logs).  Every sweep streams telemetry to
``<cache>/telemetry/<sweep>.jsonl`` and archives itself into
``<cache>/history.sqlite`` (disable with ``--no-telemetry``); ``repro
history diff`` gates a sweep against a baseline and ``repro obs
dashboard`` renders the whole thing as one self-contained HTML file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import dataclasses

from ..analysis.tables import pct, render_table
from ..faults import FAULT_PROFILES, FaultConfig, fault_profile
from ..hw.machines import ALL_MACHINES, get_machine
from ..obs.export import events_to_jsonl, text_summary, write_chrome_trace
from ..obs.history import HistoryStore, append_trajectory, trajectory_entries
from ..obs.telemetry.hub import TelemetryHub
from ..obs.telemetry.view import make_view
from ..sched.registry import available_policies, iter_policy_infos
# Re-exported for backward compatibility: the catalogue used to live here.
from ..workloads.catalog import make_workload, workload_names
from .cache import ResultCache
from .parallel import SweepExecutor, stderr_progress
from .registry import EXPERIMENTS, get_experiment, reference_spec, specs_for
from .runner import STANDARD_COMBOS, compare, run_experiment

__all__ = ["build_parser", "main", "make_workload", "workload_names"]


def _history_path(cache_dir) -> Path:
    """The history sqlite lives next to the result cache it describes."""
    return ResultCache(Path(cache_dir) if cache_dir else None).root \
        / "history.sqlite"


def _executor_from_args(args) -> SweepExecutor:
    cache = None
    if not getattr(args, "no_cache", False):
        root = getattr(args, "cache_dir", None)
        cache = ResultCache(Path(root) if root else None)
    mode = getattr(args, "progress", None)
    progress = None
    telemetry = None
    if getattr(args, "no_telemetry", False):
        # Hub disabled: keep the legacy single-line progress callback.
        if mode not in (None, "none"):
            progress = stderr_progress
    else:
        view = make_view(mode or "none", sys.stderr)
        if cache is not None or view is not None:
            stream_dir = history = None
            if cache is not None:
                stream_dir = cache.root / "telemetry"
                history = HistoryStore(cache.root / "history.sqlite")
            telemetry = TelemetryHub(stream_dir=stream_dir, view=view,
                                     history=history)
    return SweepExecutor(jobs=args.jobs, cache=cache, progress=progress,
                         timeout_s=getattr(args, "timeout", None),
                         retries=getattr(args, "retries", 2),
                         skip_failures=getattr(args, "keep_going", False),
                         telemetry=telemetry)


def _faults_from_args(args) -> "FaultConfig | None":
    name = getattr(args, "faults", None)
    if not name or name == "none":
        return None
    cfg = fault_profile(name)
    return cfg if cfg.enabled else None


def _cmd_list(args) -> int:
    print("machines:")
    for key, m in ALL_MACHINES.items():
        print(f"  {key:12s} {m.describe()}")
    print("\nschedulers (policy registry):")
    for info in iter_policy_infos():
        tags = []
        if info.fast:
            tags.append("fast-engine")
        if info.invariant_groups:
            tags.append("invariants: " + ",".join(sorted(
                info.invariant_groups)))
        suffix = f" [{'; '.join(tags)}]" if tags else ""
        print(f"  {info.name:12s} {info.description}{suffix}")
    print("\nworkloads:")
    for name in workload_names():
        print(f"  {name}")
    print("\nexperiments (registry):")
    for exp_id, exp in EXPERIMENTS.items():
        print(f"  {exp_id:20s} {exp.artefact}: {exp.description}")
    return 0


def _cmd_run(args) -> int:
    trace_path = getattr(args, "trace", None)
    events_path = getattr(args, "events", None)
    wants_obs = bool(trace_path or events_path)
    wl = make_workload(args.workload, scale=args.scale)
    machine = get_machine(args.machine)
    faults = _faults_from_args(args)
    res = run_experiment(wl, machine, args.scheduler,
                         args.governor, seed=args.seed,
                         record_trace=bool(trace_path),
                         collect_events=wants_obs,
                         faults=faults, engine=args.engine)
    print(res.brief())
    print(f"  wall={res.sim_wall_s:.3f}s  events={res.events_processed:,}  "
          f"({res.events_per_sec:,.0f} events/s)")
    if res.rss_peak_kb:
        mem = (f"  rss-peak={res.rss_peak_kb:,} KiB  "
               f"gc={res.gc_collections} collection(s), "
               f"{res.gc_collected:,} collected")
        if res.alloc_peak_kb:
            mem += f"  alloc-peak={res.alloc_peak_kb:,} KiB"
        print(mem)
    if faults is not None:
        injected = int(res.extra.get("faults_injected", 0))
        counters = {k.split(".", 1)[1]: v["value"]
                    for k, v in sorted(res.metrics.items())
                    if k.startswith("kernel.fault_")}
        detail = ", ".join(f"{k}={v}" for k, v in counters.items())
        print(f"  faults[{args.faults}]: {injected} planned"
              + (f" ({detail})" if detail else ""))
    if args.verbose and res.freq_dist is not None:
        for label, frac in res.freq_dist.as_dict().items():
            if frac >= 0.005:
                print(f"  {label}: {frac:.1%}")
    if trace_path:
        label = f"{res.workload} {res.scheduler}-{res.governor}"
        write_chrome_trace(trace_path, res.trace_segments, res.events,
                           n_cpus=machine.n_cpus, label=label)
        print(f"  trace: {trace_path} "
              f"({len(res.trace_segments)} segments, "
              f"{len(res.events)} events; open at ui.perfetto.dev)")
    if events_path:
        with open(events_path, "w", encoding="utf-8") as fh:
            n = events_to_jsonl(res.events, fh)
        print(f"  events: {events_path} ({n} JSONL records)")
    return 0


def _cmd_trace(args) -> int:
    spec = None
    try:
        spec = reference_spec(get_experiment(args.experiment),
                              seed=args.seed, scale=args.scale,
                              machine=args.machine)
        if spec is None:
            print(f"error: {args.experiment} has no traceable workload "
                  f"(pure table entry)", file=sys.stderr)
            return 2
    except KeyError:
        # Not a registry id — fall back to treating it as a workload name.
        from .parallel import RunSpec
        make_workload(args.experiment)   # raises KeyError on bad names
        spec = RunSpec(workload=args.experiment,
                       machine=args.machine or "5218_2s",
                       scheduler="nest", governor="schedutil",
                       seed=args.seed, scale=args.scale, record_trace=True)

    wl = make_workload(spec.workload, scale=spec.scale)
    machine = get_machine(spec.machine)
    res = run_experiment(wl, machine, spec.scheduler, spec.governor,
                         seed=spec.seed, record_trace=True,
                         collect_events=True)
    print(res.brief())
    print(text_summary(res.trace_segments, res.events, res.metrics))
    if args.out:
        write_chrome_trace(args.out, res.trace_segments, res.events,
                           n_cpus=machine.n_cpus,
                           label=f"{res.workload} "
                                 f"{res.scheduler}-{res.governor}")
        print(f"trace: {args.out} (open at ui.perfetto.dev)")
    return 0


def _cmd_obs(args) -> int:
    if args.action == "dashboard":
        return _cmd_obs_dashboard(args)
    if args.action == "analyze":
        return _cmd_obs_analyze(args)
    if args.action == "query":
        return _cmd_obs_query(args)
    root = Path(args.cache_dir) if args.cache_dir else None
    cache = ResultCache(root)
    report = cache.read_report("last-sweep")
    if report is None:
        print(f"no sweep report under {cache.root} — run a sweep or "
              f"compare first", file=sys.stderr)
        return 1
    if getattr(args, "json", False):
        import json as _json
        print(_json.dumps(report, sort_keys=True, indent=2))
        return 0
    st = report.get("stats", {})
    print(f"last sweep: {st.get('n_specs', 0)} runs, "
          f"{st.get('simulated', 0)} simulated, "
          f"{st.get('cache_hits', 0)} cached, "
          f"{st.get('wall_s', 0.0):.2f}s wall "
          f"({st.get('workers', 0)} worker(s))")
    if st.get("cache_used"):
        print(f"  cache: {st.get('cache_hits', 0)} hit(s), "
              f"{st.get('cache_misses', 0)} miss(es)")
    if st.get("simulated"):
        print(f"  {st.get('events', 0):,} engine events, "
              f"{st.get('events_per_sec', 0.0):,.0f} events/s, "
              f"{st.get('sim_wall_s', 0.0):.2f}s summed sim time")
    if st.get("retried") or st.get("timeouts") or st.get("skipped") \
            or st.get("recovered") or st.get("degraded"):
        print(f"  hardening: {st.get('retried', 0)} retried, "
              f"{st.get('timeouts', 0)} timeout(s), "
              f"{st.get('recovered', 0)} recovered from checkpoint, "
              f"{st.get('skipped', 0)} skipped"
              + (", degraded to serial" if st.get("degraded") else ""))
    if report.get("interrupted"):
        print("  NOTE: sweep was interrupted; completed runs are "
              "checkpointed and will be reused on the next run")
    runs = report.get("runs", [])
    slowest = sorted(runs, key=lambda r: -r.get("sim_wall_s", 0.0))
    for run in slowest[:args.top]:
        src = run.get("outcome") or ("cache" if run.get("cached") else "sim")
        print(f"  {src:10s} {run.get('sim_wall_s', 0.0):6.2f}s  "
              f"{run.get('events_processed', 0):>12,} ev  "
              f"{run.get('label', '?')}")
    return 0


def _analysis_events(args):
    """The (result, events, segments, n_cpus) an analyze/query works on.

    ``--events FILE`` analyzes a JSONL dump; otherwise the experiment's
    reference run (or a bare workload name, like ``repro trace``) is
    simulated with event collection on.
    """
    from ..obs.export import events_from_jsonl

    if getattr(args, "events", None):
        with open(args.events, encoding="utf-8") as fh:
            events = events_from_jsonl(fh)
        n_cpus = 1 + max((ev.cpu for ev in events if ev.cpu >= 0), default=-1)
        return None, events, None, n_cpus

    try:
        exp = get_experiment(args.experiment)
    except KeyError:
        exp = None
    if exp is not None:
        spec = reference_spec(exp, seed=args.seed, scale=args.scale,
                              machine=args.machine)
        if spec is None:
            raise ValueError(f"{args.experiment} has no traceable workload "
                             f"(pure table entry)")
    else:
        from .parallel import RunSpec
        make_workload(args.experiment)   # raises KeyError on bad names
        spec = RunSpec(workload=args.experiment,
                       machine=args.machine or "5218_2s",
                       scheduler="nest", governor="schedutil",
                       seed=args.seed, scale=args.scale, record_trace=True)
    machine = get_machine(spec.machine)
    res = run_experiment(make_workload(spec.workload, scale=spec.scale),
                         machine, spec.scheduler, spec.governor,
                         seed=spec.seed, record_trace=True,
                         collect_events=True,
                         engine=getattr(args, "engine", "ref"))
    return res, res.events, res.trace_segments, machine.n_cpus


def _cmd_obs_analyze(args) -> int:
    """Replay a run's event log through the analyzers; print/save the
    report (deterministic: byte-identical across engines and repeats)."""
    from ..obs.analysis import (analyze_run, diff_reports,
                                render_attribution, report_json, report_text)

    if not args.experiment and not args.events:
        print("error: give an experiment/workload or --events FILE",
              file=sys.stderr)
        return 2
    try:
        result, events, segments, n_cpus = _analysis_events(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = analyze_run(result, events, n_cpus=n_cpus, segments=segments,
                         warm_window_us=args.warm_window_us)
    doc = report_json(report)
    if args.out:
        Path(args.out).write_text(doc, encoding="utf-8")
    if args.json:
        sys.stdout.write(doc)
    else:
        print(report_text(report))
        if args.out:
            print(f"report: {args.out} ({len(doc):,} bytes)")
    if args.baseline:
        import json as _json
        try:
            base = _json.loads(Path(args.baseline).read_text(
                encoding="utf-8"))
        except (OSError, _json.JSONDecodeError) as exc:
            print(f"error: baseline report unreadable: {exc}",
                  file=sys.stderr)
            return 2
        diff = diff_reports(report, base, top=args.top_moves)
        print()
        print(render_attribution(
            diff, cur_label="this run",
            base_label=Path(args.baseline).name))
    return 0


def _cmd_obs_query(args) -> int:
    """Filter a run's event log by kind/cpu/task/time range."""
    import json as _json

    from ..obs.analysis import EventFilter, filter_events, \
        render_events_table
    from ..obs.events import event_to_dict

    if not args.experiment and not args.events:
        print("error: give an experiment/workload or --events FILE",
              file=sys.stderr)
        return 2
    try:
        _, events, _, _ = _analysis_events(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    flt = EventFilter(kinds=tuple(args.kind or ()), cpu=args.cpu,
                      task=args.task, since_us=args.since,
                      until_us=args.until)
    matched = list(filter_events(events, flt))
    shown = matched[:args.limit] if args.limit else matched
    if args.json:
        for ev in shown:
            print(_json.dumps(event_to_dict(ev), sort_keys=True,
                              separators=(",", ":")))
    else:
        print(render_events_table(shown, total=len(matched)))
        print(f"{len(matched)} of {len(events)} event(s) matched")
    return 0


def _cmd_obs_dashboard(args) -> int:
    """Render the self-contained HTML dashboard for one archived sweep."""
    from ..obs.dashboard import build_dashboard

    history = _history_path(args.cache_dir)
    if not history.exists():
        print(f"no run history at {history} — run a sweep with telemetry "
              f"enabled first", file=sys.stderr)
        return 1
    trajectory = Path(args.trajectory) if args.trajectory else None
    if trajectory is None:
        default = Path("BENCH_trajectory.json")
        trajectory = default if default.exists() else None
    try:
        html_text = build_dashboard(
            history, sweep_ref=args.sweep,
            stream_dir=history.parent / "telemetry",
            trajectory_path=trajectory,
            traces_dir=Path(args.traces_dir) if args.traces_dir else None)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = Path(args.out)
    out.write_text(html_text, encoding="utf-8")
    print(f"dashboard: {out} ({len(html_text):,} bytes, self-contained)")
    return 0


def _cmd_history(args) -> int:
    path = _history_path(args.cache_dir)
    if args.action == "export-trajectory":
        return _cmd_history_export(args)
    if not path.exists():
        print(f"no run history at {path} — run a sweep with telemetry "
              f"enabled first", file=sys.stderr)
        return 1
    with HistoryStore(path) as store:
        if args.action == "list":
            sweeps = store.sweeps(limit=args.limit)
            if not sweeps:
                print("history is empty")
                return 0
            rows = []
            for s in sweeps:
                import time as _time
                when = _time.strftime("%Y-%m-%d %H:%M:%S",
                                      _time.localtime(s["ts"]))
                flags = []
                if s["interrupted"]:
                    flags.append("interrupted")
                if s["degraded"]:
                    flags.append("degraded")
                if s["skipped"]:
                    flags.append(f"{s['skipped']} skipped")
                rows.append([str(s["id"]), s["uid"], when,
                             s["git_sha"] or "-", str(s["n_specs"]),
                             str(s["simulated"]), str(s["cache_hits"]),
                             f"{s['wall_s']:.2f}s",
                             ",".join(flags) or "-",
                             s["label"] or "-"])
            print(render_table(
                ["id", "sweep", "when", "git", "runs", "sim", "cached",
                 "wall", "flags", "label"], rows,
                title=f"run history at {path}"))
            return 0
        if args.action == "show":
            try:
                sweep = store.resolve(args.ref)
            except KeyError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(f"sweep #{sweep['id']} {sweep['uid']} "
                  f"(git {sweep['git_sha'] or '?'}"
                  + (f", {sweep['label']}" if sweep["label"] else "") + ")")
            st = {k: sweep[k] for k in ("n_specs", "simulated", "cache_hits",
                                        "retried", "timeouts", "skipped")}
            print("  " + ", ".join(f"{v} {k}" for k, v in st.items() if v))
            print(f"  wall {sweep['wall_s']:.2f}s, "
                  f"{sweep['events']:,} events, "
                  f"{sweep['workers']} worker(s)")
            for run in store.runs_of(sweep["id"]):
                wall = (f"{run['sim_wall_s']:6.2f}s"
                        if run["sim_wall_s"] is not None else "     -")
                print(f"  {run['outcome']:10s} {wall}  "
                      f"x{run['attempts']}  {run['label']}"
                      + (f"  [{run['error']}]" if run["error"] else ""))
            return 0
        # diff
        try:
            diff = store.diff(args.ref, args.baseline,
                              wall_tol=args.wall_tol,
                              metric_tol=args.metric_tol,
                              attribute=args.attribute,
                              top_moves=args.top_moves)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(diff.render())
        return 1 if diff.has_regressions else 0


def _cmd_history_export(args) -> int:
    """profile_sweep --json record -> BENCH_trajectory.json entries."""
    import json as _json

    with open(args.record, encoding="utf-8") as fh:
        record = _json.load(fh)
    if not record.get("parity_ok", True):
        print("error: benchmark record reports an engine parity failure — "
              "refusing to export its numbers", file=sys.stderr)
        return 1
    entries = trajectory_entries(record, pr=args.pr, host=args.host)
    if args.append:
        added = append_trajectory(Path(args.append), entries)
        print(f"trajectory: merged {added} entr"
              f"{'y' if added == 1 else 'ies'} into {args.append}")
    else:
        print(_json.dumps(entries, indent=2))
    return 0


def _compare_combos(schedulers):
    """The (scheduler, governor) grid for ``compare --scheduler``.

    No flags: the paper's standard four combos.  With flags: the CFS
    baseline pair first (speedups are quoted against cfs-schedutil),
    then each requested scheduler under both governors, deduplicated in
    order."""
    if not schedulers:
        return STANDARD_COMBOS
    combos = [("cfs", "schedutil"), ("cfs", "performance")]
    for sched in schedulers:
        for governor in ("schedutil", "performance"):
            if (sched, governor) not in combos:
                combos.append((sched, governor))
    return tuple(combos)


def _cmd_compare(args) -> int:
    executor = _executor_from_args(args)
    cmp = compare(lambda: make_workload(args.workload, scale=args.scale),
                  get_machine(args.machine),
                  combos=_compare_combos(args.scheduler),
                  seeds=tuple(range(1, args.seeds + 1)), executor=executor,
                  faults=_faults_from_args(args), engine=args.engine)
    rows = []
    for (sched, gov), stats in cmp.combos.items():
        rows.append([
            stats.label,
            f"{stats.mean_makespan_us / 1e6:.4f}s",
            pct(cmp.speedup_of(sched, gov)),
            f"{stats.mean_energy_j:.1f}J",
            pct(cmp.energy_savings_of(sched, gov)),
            f"{stats.mean_underload_per_s:.2f}",
        ])
    print(render_table(
        ["scheduler", "time", "speedup", "energy", "savings", "underload/s"],
        rows, title=f"{cmp.workload} on {cmp.machine} "
                    f"({args.seeds} seeds, vs CFS-schedutil)"))
    print(executor.last_stats.summary())
    return 0


def _cmd_sweep(args) -> int:
    exp = get_experiment(args.experiment)
    specs = specs_for(exp, seeds=tuple(range(1, args.seeds + 1)),
                      scale=args.scale, machines=tuple(args.machine or ()))
    if not specs:
        print(f"error: {args.experiment} has no buildable workloads to sweep",
              file=sys.stderr)
        return 2
    if args.scheduler:
        specs = [dataclasses.replace(s, scheduler=args.scheduler)
                 for s in specs]
    faults = _faults_from_args(args)
    if faults is not None:
        specs = [dataclasses.replace(s, faults=faults) for s in specs]
    if args.engine != "ref":
        specs = [dataclasses.replace(s, engine=args.engine) for s in specs]
    executor = _executor_from_args(args)
    results = executor.run(specs)
    for spec, res in zip(specs, results):
        if res is None:
            print(f"SKIPPED {spec.label} (failed after retries)")
        else:
            print(res.brief())
    print(executor.last_stats.summary())
    return 0


def _cmd_cache(args) -> int:
    root = Path(args.cache_dir) if args.cache_dir else None
    cache = ResultCache(root)
    if args.action == "stats":
        st = cache.stats()
        quarantined = (f", {st['quarantined']} quarantined"
                       if st.get("quarantined") else "")
        print(f"cache at {st['root']}: {st['entries']} entries, "
              f"{st['bytes'] / 1024:.1f} KiB{quarantined}")
    elif args.action == "verify":
        report = cache.verify(fix=not args.dry_run)
        print(f"cache at {cache.root}: {report['checked']} entries checked, "
              f"{report['corrupt']} corrupt")
        for entry in report["entries"]:
            dest = entry.get("quarantined_to")
            where = f" -> {dest}" if dest else " (left in place)"
            print(f"  corrupt: {entry['path']}{where}")
            print(f"    {entry['error']}")
        if report["corrupt"] and not args.dry_run:
            print(f"quarantined entries are under {report['quarantine_dir']}")
        return 1 if report["corrupt"] else 0
    else:  # clear
        n = cache.clear()
        print(f"cleared {n} cached result(s)")
    return 0


def _cmd_verify(args) -> int:
    # Imported lazily: the verify subsystem is only needed by this command.
    from ..verify.fuzz import FuzzConfig, fuzz
    from ..verify.repro import replay_repro

    if args.action == "conformance":
        return _cmd_verify_conformance(args)
    if args.action == "fuzz":
        config = FuzzConfig(
            runs=args.runs, base_seed=args.seed,
            diff_every=args.diff_every, par_every=args.par_every,
            dual_every=args.dual_every,
            max_failures=args.max_failures,
            repro_dir=Path(args.repro_dir) if args.repro_dir else None,
            shrink_budget=args.shrink_budget)
        report = fuzz(config, log=lambda msg: print(msg, file=sys.stderr))
        print(report.summary())
        for failure in report.failures:
            names = ", ".join(sorted({v.invariant
                                      for v in failure.violations}))
            print(f"  [{failure.index}] {failure.scenario.label}: {names}")
            print(f"        shrunk: {failure.shrunk.label}")
            if failure.repro_path is not None:
                print(f"        repro:  {failure.repro_path}")
        if args.report:
            from .cache import atomic_write_json
            atomic_write_json(Path(args.report), report.to_dict(), indent=2)
            print(f"report: {args.report}")
        return 1 if report.failures else 0

    # replay
    rc = 0
    for path in args.repro:
        try:
            violations = replay_repro(Path(path))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if violations:
            rc = 1
            print(f"{path}: {len(violations)} violation(s)")
            for v in violations[:10]:
                print(f"  {v}")
        else:
            print(f"{path}: clean (the captured failure no longer "
                  f"reproduces)")
    return rc


def _cmd_verify_conformance(args) -> int:
    """Run the policy conformance battery; exit 1 on any failure.

    ``--expect-broken`` instead certifies the suite itself: the broken
    fixture policy is registered, run, and must be *convicted* — exit 0
    means the suite caught it."""
    from ..sched.registry import unregister_policy
    from ..verify.conformance import (register_broken_fixture,
                                      render_report, run_conformance)

    if args.expect_broken:
        register_broken_fixture()
        try:
            report = run_conformance("broken", hashseed_check=False)
        finally:
            unregister_policy("broken")
        print(render_report(report))
        if report.passed:
            print("error: the broken fixture passed conformance — the "
                  "suite has lost its teeth", file=sys.stderr)
            return 1
        oracle_failures = [c for c in report.failures()
                           if c.name == "oracle"]
        if not oracle_failures:
            print("error: the broken fixture failed, but not via the "
                  "oracle", file=sys.stderr)
            return 1
        print("broken fixture convicted, as required")
        return 0

    policies = args.policy or available_policies()
    rc = 0
    for name in policies:
        report = run_conformance(name, hashseed_check=not args.fast)
        print(render_report(report))
        if not report.passed:
            rc = 1
    return rc


def _cmd_describe(args) -> int:
    exp = get_experiment(args.experiment)
    print(f"{exp.artefact}: {exp.description}")
    print(f"  bench:     {exp.bench}")
    print(f"  machines:  {', '.join(exp.machines) or '-'}")
    print(f"  combos:    {', '.join('-'.join(c) for c in exp.combos) or '-'}")
    print(f"  expected:  {exp.expected_shape}")
    if exp.workloads:
        print(f"  workloads: {', '.join(exp.workloads)}")
    return 0


def _add_sweep_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: $REPRO_JOBS or cpu count)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore the result cache and re-simulate everything")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (default: "
                        "$REPRO_CACHE_DIR or .repro-cache)")
    p.add_argument("--progress", nargs="?", const="auto", default=None,
                   choices=["auto", "live", "plain", "none"],
                   help="sweep progress on stderr: 'live' (multi-line ANSI "
                        "view with per-worker heartbeats), 'plain' (one "
                        "line per run — the non-TTY/CI fallback), 'auto' "
                        "(live on a TTY, plain otherwise).  Bare "
                        "--progress means auto")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable telemetry streaming/history recording "
                        "(progress falls back to the legacy stderr line)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="kill and retry the worker pool if no run completes "
                        "for this long (default: wait forever)")
    p.add_argument("--retries", type=int, default=2,
                   help="attempts per spec after crashes/timeouts "
                        "(default: 2)")
    p.add_argument("--keep-going", action="store_true",
                   help="skip specs that exhaust their retries instead of "
                        "aborting the sweep")


def _add_engine_option(p: argparse.ArgumentParser) -> None:
    p.add_argument("--engine", default="ref", choices=["ref", "fast"],
                   help="simulation backend: 'ref' (reference) or 'fast' "
                        "(SoA hot paths, bit-identical results; uses numpy "
                        "when installed)")


def _add_faults_option(p: argparse.ArgumentParser) -> None:
    p.add_argument("--faults", default=None, metavar="PROFILE",
                   choices=sorted(FAULT_PROFILES),
                   help="inject seeded faults (profiles: "
                        + ", ".join(sorted(FAULT_PROFILES)) + ")")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="nest-repro",
        description="Reproduction of 'OS Scheduling with Nest' (EuroSys'22)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list machines, workloads, experiments") \
       .set_defaults(fn=_cmd_list)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("--workload", required=True)
    run_p.add_argument("--machine", default="5218_2s")
    run_p.add_argument("--scheduler", default="nest",
                       choices=available_policies())
    run_p.add_argument("--governor", default="schedutil",
                       choices=["schedutil", "performance"])
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--verbose", action="store_true")
    run_p.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Perfetto/Chrome trace JSON here")
    run_p.add_argument("--events", default=None, metavar="PATH",
                       help="write the structured event log as JSONL here")
    _add_faults_option(run_p)
    _add_engine_option(run_p)
    run_p.set_defaults(fn=_cmd_run)

    trace_p = sub.add_parser(
        "trace", help="trace one representative run of an experiment")
    trace_p.add_argument("experiment",
                         help="registry id (e.g. fig2) or workload name")
    trace_p.add_argument("--machine", default=None)
    trace_p.add_argument("--seed", type=int, default=1)
    trace_p.add_argument("--scale", type=float, default=1.0)
    trace_p.add_argument("--out", default=None, metavar="PATH",
                         help="also write the Perfetto trace JSON here")
    trace_p.set_defaults(fn=_cmd_trace)

    cmp_p = sub.add_parser("compare",
                           help="compare schedulers on one workload")
    cmp_p.add_argument("--workload", required=True)
    cmp_p.add_argument("--machine", default="5218_2s")
    cmp_p.add_argument("--scheduler", action="append", default=None,
                       choices=available_policies(), metavar="POLICY",
                       help="compare these schedulers against the CFS "
                            "baseline (repeatable; default: the standard "
                            "cfs/nest grid)")
    cmp_p.add_argument("--seeds", type=int, default=3)
    cmp_p.add_argument("--scale", type=float, default=1.0)
    _add_sweep_options(cmp_p)
    _add_faults_option(cmp_p)
    _add_engine_option(cmp_p)
    cmp_p.set_defaults(fn=_cmd_compare)

    sweep_p = sub.add_parser("sweep",
                             help="run a registry experiment's full sweep")
    sweep_p.add_argument("experiment", help="registry id, e.g. fig5")
    sweep_p.add_argument("--scheduler", default=None,
                         choices=available_policies(), metavar="POLICY",
                         help="override every spec's scheduler (e.g. run "
                              "a registry sweep under scxnest)")
    sweep_p.add_argument("--seeds", type=int, default=1)
    sweep_p.add_argument("--scale", type=float, default=1.0)
    sweep_p.add_argument("--machine", action="append",
                         help="restrict to these machine keys (repeatable)")
    _add_sweep_options(sweep_p)
    _add_faults_option(sweep_p)
    _add_engine_option(sweep_p)
    sweep_p.set_defaults(fn=_cmd_sweep)

    cache_p = sub.add_parser("cache", help="result-cache maintenance")
    cache_p.add_argument("action", choices=["stats", "verify", "clear"])
    cache_p.add_argument("--cache-dir", default=None)
    cache_p.add_argument("--dry-run", action="store_true",
                         help="verify: report corrupt entries without "
                              "quarantining them")
    cache_p.set_defaults(fn=_cmd_cache)

    obs_p = sub.add_parser(
        "obs", help="observability: reports, dashboard, trace analysis")
    obs_sub = obs_p.add_subparsers(dest="action", required=True)

    oreport_p = obs_sub.add_parser(
        "report", help="digest of the last sweep's observability report")
    oreport_p.add_argument("--cache-dir", default=None)
    oreport_p.add_argument("--top", type=int, default=8,
                           help="show the N slowest runs (default: 8)")
    oreport_p.add_argument("--json", action="store_true",
                           help="print the full machine-readable report "
                                "instead of the text digest")

    odash_p = obs_sub.add_parser(
        "dashboard", help="self-contained HTML dashboard of a sweep")
    odash_p.add_argument("--cache-dir", default=None)
    odash_p.add_argument("--sweep", default="last", metavar="REF",
                         help="sweep to render — 'last', 'last-N', a "
                              "history id, or a sweep-uid prefix "
                              "(default: last)")
    odash_p.add_argument("--out", default="dashboard.html", metavar="PATH",
                         help="output HTML path (default: dashboard.html)")
    odash_p.add_argument("--trajectory", default=None, metavar="PATH",
                         help="BENCH_trajectory.json for the perf-"
                              "trajectory sparklines (default: "
                              "./BENCH_trajectory.json when present)")
    odash_p.add_argument("--traces-dir", default=None, metavar="DIR",
                         help="link Perfetto traces found here")

    def _add_analysis_source(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("experiment", nargs="?", default=None,
                        help="registry id (e.g. fig2) or workload name")
        sp.add_argument("--events", default=None, metavar="JSONL",
                        help="analyze this event dump (from `run "
                             "--events`) instead of simulating")
        sp.add_argument("--machine", default=None)
        sp.add_argument("--seed", type=int, default=1)
        sp.add_argument("--scale", type=float, default=1.0)
        sp.add_argument("--json", action="store_true",
                        help="machine-readable output")

    oana_p = obs_sub.add_parser(
        "analyze",
        help="replay a run's event log through the trace analyzers")
    _add_analysis_source(oana_p)
    _add_engine_option(oana_p)
    oana_p.add_argument("--warm-window-us", type=int, default=1000,
                        help="a dispatch counts as warm when its core "
                             "was active within this window "
                             "(default: 1000µs)")
    oana_p.add_argument("--out", default=None, metavar="PATH",
                        help="also write the canonical JSON report here")
    oana_p.add_argument("--baseline", default=None, metavar="REPORT.json",
                        help="diff against a saved report: rank moved "
                             "metrics and per-tier latency deltas")
    oana_p.add_argument("--top-moves", type=int, default=3,
                        help="baseline diff: metrics to rank "
                             "(default: 3)")

    oq_p = obs_sub.add_parser(
        "query", help="filter a run's event log by kind/cpu/task/time")
    _add_analysis_source(oq_p)
    _add_engine_option(oq_p)
    oq_p.add_argument("--kind", action="append", metavar="KIND",
                      help="keep these kinds — exact (sched.dispatch) or "
                           "prefix group (place); repeatable")
    oq_p.add_argument("--cpu", type=int, default=None)
    oq_p.add_argument("--task", type=int, default=None)
    oq_p.add_argument("--since", type=int, default=None, metavar="US",
                      help="keep events at or after this simulated µs")
    oq_p.add_argument("--until", type=int, default=None, metavar="US",
                      help="keep events at or before this simulated µs")
    oq_p.add_argument("--limit", type=int, default=50,
                      help="rows to print (default: 50; 0 = all)")

    obs_p.set_defaults(fn=_cmd_obs)

    hist_p = sub.add_parser(
        "history", help="persistent run history and regression gates")
    hist_sub = hist_p.add_subparsers(dest="action", required=True)
    hlist_p = hist_sub.add_parser("list", help="recent sweeps, newest first")
    hlist_p.add_argument("--limit", type=int, default=20)
    hshow_p = hist_sub.add_parser("show", help="one sweep's runs")
    hshow_p.add_argument("ref", nargs="?", default="last",
                         help="'last', 'last-N', id, or uid prefix")
    hdiff_p = hist_sub.add_parser(
        "diff", help="gate a sweep against a baseline sweep "
                     "(exit 1 on regression)")
    hdiff_p.add_argument("ref", nargs="?", default="last",
                         help="sweep under test (default: last)")
    hdiff_p.add_argument("--baseline", default="last-1", metavar="REF",
                         help="baseline sweep (default: last-1)")
    hdiff_p.add_argument("--wall-tol", type=float, default=0.5,
                         help="relative wall-time regression tolerance "
                              "(default: 0.5 = flag >1.5x slower)")
    hdiff_p.add_argument("--metric-tol", type=float, default=0.0,
                         help="relative drift tolerance for deterministic "
                              "outputs (default: 0 = bit-stable)")
    hdiff_p.add_argument("--attribute", action="store_true",
                         help="rank, per matched run, which metrics "
                              "(incl. derived.* paper metrics) moved "
                              "most vs the baseline")
    hdiff_p.add_argument("--top-moves", type=int, default=3,
                         help="attribution: metrics to rank per run "
                              "(default: 3)")
    hexp_p = hist_sub.add_parser(
        "export-trajectory",
        help="BENCH_trajectory.json entries from a profile_sweep --json "
             "record")
    hexp_p.add_argument("--record", required=True, metavar="PATH",
                        help="benchmark record written by "
                             "profile_sweep.py --json")
    hexp_p.add_argument("--pr", type=int, required=True,
                        help="PR number the measurement belongs to")
    hexp_p.add_argument("--host", default="dev-container",
                        help="host tag for the entries "
                             "(default: dev-container)")
    hexp_p.add_argument("--append", default=None, metavar="PATH",
                        help="merge into this trajectory file instead of "
                             "printing the entries")
    for sp in (hlist_p, hshow_p, hdiff_p):
        sp.add_argument("--cache-dir", default=None)
    hexp_p.add_argument("--cache-dir", default=None)
    hist_p.set_defaults(fn=_cmd_history)

    verify_p = sub.add_parser(
        "verify", help="property-based fuzzing and repro replay")
    verify_sub = verify_p.add_subparsers(dest="action", required=True)
    fuzz_p = verify_sub.add_parser(
        "fuzz", help="fuzz seeded scenarios through the invariant oracle")
    fuzz_p.add_argument("--runs", type=int, default=200,
                        help="scenarios to generate (default: 200)")
    fuzz_p.add_argument("--seed", type=int, default=1,
                        help="base seed of the scenario stream (default: 1)")
    fuzz_p.add_argument("--diff-every", type=int, default=10, metavar="N",
                        help="differential checks on every Nth clean "
                             "scenario (0 disables; default: 10)")
    fuzz_p.add_argument("--par-every", type=int, default=100, metavar="N",
                        help="serial-vs-parallel check on every Nth "
                             "scenario (0 disables; default: 100)")
    fuzz_p.add_argument("--dual-every", type=int, default=1, metavar="N",
                        help="run every Nth scenario through the fast "
                             "engine too and require bit-identical "
                             "artifacts (0 disables; default: 1 = every "
                             "scenario)")
    fuzz_p.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many failures (0 = never; "
                             "default: 5)")
    fuzz_p.add_argument("--repro-dir", default=None, metavar="DIR",
                        help="write shrunk repro JSON files here")
    fuzz_p.add_argument("--shrink-budget", type=int, default=40,
                        help="re-runs allowed while shrinking each failure "
                             "(0 disables shrinking; default: 40)")
    fuzz_p.add_argument("--report", default=None, metavar="PATH",
                        help="write the full campaign report as JSON here")
    replay_p = verify_sub.add_parser(
        "replay", help="re-run saved repro files through their checks")
    replay_p.add_argument("repro", nargs="+", metavar="REPRO.json")
    conf_p = verify_sub.add_parser(
        "conformance",
        help="run the policy conformance battery (verify/conformance.py)")
    conf_p.add_argument("--policy", action="append", default=None,
                        choices=available_policies(), metavar="POLICY",
                        help="certify only these policies (repeatable; "
                             "default: every registered policy)")
    conf_p.add_argument("--fast", action="store_true",
                        help="skip the cross-interpreter PYTHONHASHSEED "
                             "determinism check (spawns subprocesses)")
    conf_p.add_argument("--expect-broken", action="store_true",
                        help="self-test: run the deliberately broken "
                             "fixture policy and exit 0 only if the "
                             "suite convicts it")
    verify_p.set_defaults(fn=_cmd_verify)

    desc_p = sub.add_parser("describe", help="show a registry entry")
    desc_p.add_argument("experiment")
    desc_p.set_defaults(fn=_cmd_describe)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
