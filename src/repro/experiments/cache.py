"""Content-addressed on-disk cache of simulation results.

A :class:`RunSpec` fully determines a simulation (the engine is
deterministic), so its canonical JSON — machine, workload and scale,
scheduler, governor, Nest parameters, kernel config, fault config, seed —
hashed together with the engine-version salt is a content address for the
:class:`RunResult`.  Re-running a figure or a benchmark sweep then only
simulates cache misses; everything else is a JSON read.

Entries live under ``.repro-cache/<hh>/<hash>.json`` (sharded by the first
two hex digits; override the root with ``$REPRO_CACHE_DIR``).  Writes are
atomic and durable (temp file + fsync + rename) so concurrent sweep
workers never expose a torn entry and a crash never leaves a half-written
one.  An entry that fails to decode is moved into ``.quarantine/`` rather
than deleted — ``repro cache verify`` scans for such entries in bulk.
:data:`repro.sim.engine.ENGINE_VERSION` is mixed into every key: bumping
it after a semantic engine change orphans all stale entries at once.

Wall-clock telemetry (``sim_wall_s``, ``events_processed``) is stored with
the entry, so a hit reports the cost of the run that produced it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..hw.machines import get_machine
from ..metrics.freqdist import FreqDistribution
from ..metrics.summary import RunResult
from ..metrics.underload import UnderloadResult
from ..sim.engine import ENGINE_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .parallel import RunSpec

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump when the cache *format* (not the engine) changes shape.
#: 2: added the serialized observability metrics registry ("metrics").
#: 3: added the nondeterministic "host" telemetry block (peak RSS, GC
#:    deltas, tracemalloc peak) — dropped, like sim_wall_s, by every
#:    determinism comparison.
FORMAT_VERSION = 3

#: Subdirectory of the cache root where corrupt entries are parked.
QUARANTINE_DIR = ".quarantine"

#: Exceptions that mean "this entry cannot be decoded" (as opposed to
#: "this entry does not exist", which is a plain miss).
_DECODE_ERRORS = (json.JSONDecodeError, KeyError, TypeError, ValueError)


def default_cache_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def atomic_write_json(path: Path, payload: Any, *, indent: Optional[int] = None,
                      sort_keys: bool = False) -> None:
    """Write JSON so readers never observe a torn or half-flushed file.

    Temp file in the destination directory (same filesystem, so the final
    ``os.replace`` is atomic), fsync before the rename (so a crash cannot
    leave a zero-length or truncated file under the final name).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=indent, sort_keys=sort_keys,
                      separators=None if indent else (",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------

def spec_key(spec: "RunSpec") -> str:
    """Stable content address of one simulation configuration."""
    payload: Dict[str, Any] = {
        "engine_version": ENGINE_VERSION,
        "format": FORMAT_VERSION,
        "machine": spec.machine,
        "workload": spec.workload,
        "scale": spec.scale,
        "scheduler": spec.scheduler,
        "governor": spec.governor,
        "seed": spec.seed,
        "max_us": spec.max_us,
        "nest_params": (None if spec.nest_params is None
                        else dataclasses.asdict(spec.nest_params)),
        "kernel_config": (None if spec.kernel_config is None
                          else dataclasses.asdict(spec.kernel_config)),
    }
    # Only mixed in when set, so every pre-existing (fault-free) entry
    # keeps its address.
    faults = getattr(spec, "faults", None)
    if faults is not None:
        payload["faults"] = dataclasses.asdict(faults)
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


# ---------------------------------------------------------------------------
# RunResult <-> JSON
# ---------------------------------------------------------------------------

def result_to_jsonable(result: RunResult, machine_key: str) -> Dict[str, Any]:
    """Serialize everything deterministic about a RunResult.

    Trace segments are intentionally not cached (they are huge and only
    trace-shaped benchmarks want them; those bypass the cache).
    """
    under = result.underload
    fdist = result.freq_dist
    return {
        "machine_key": machine_key,
        "scheduler": result.scheduler,
        "governor": result.governor,
        "machine": result.machine,
        "workload": result.workload,
        "seed": result.seed,
        "makespan_us": result.makespan_us,
        "energy_joules": result.energy_joules,
        "underload": None if under is None else {
            "interval_us": under.interval_us,
            "series": list(under.series),
            "end_us": under.end_us,
        },
        "freq_dist": None if fdist is None else {
            "bin_time_us": list(fdist.bin_time_us),
            "total_us": fdist.total_us,
        },
        "n_tasks": result.n_tasks,
        "n_migrations": result.n_migrations,
        "total_wakeups": result.total_wakeups,
        "wakeup_latency_us": result.wakeup_latency_us,
        "policy_stats": dict(result.policy_stats),
        "extra": dict(result.extra),
        "metrics": dict(result.metrics),
        "sim_wall_s": result.sim_wall_s,
        "events_processed": result.events_processed,
        # Host-side memory telemetry: nondeterministic like sim_wall_s
        # (grouped so determinism comparisons drop one key).
        "host": {
            "rss_peak_kb": result.rss_peak_kb,
            "gc_collections": result.gc_collections,
            "gc_collected": result.gc_collected,
            "alloc_peak_kb": result.alloc_peak_kb,
        },
    }


def result_from_jsonable(data: Dict[str, Any]) -> RunResult:
    """Rebuild a RunResult equal (field by field) to the cached one."""
    under = None
    if data["underload"] is not None:
        u = data["underload"]
        under = UnderloadResult(u["interval_us"], list(u["series"]),
                                u["end_us"])
    fdist = None
    if data["freq_dist"] is not None:
        fdist = FreqDistribution(get_machine(data["machine_key"]))
        fdist.bin_time_us = list(data["freq_dist"]["bin_time_us"])
        fdist.total_us = data["freq_dist"]["total_us"]
    host = data.get("host", {})
    return RunResult(
        scheduler=data["scheduler"],
        governor=data["governor"],
        machine=data["machine"],
        workload=data["workload"],
        seed=data["seed"],
        makespan_us=data["makespan_us"],
        energy_joules=data["energy_joules"],
        underload=under,
        freq_dist=fdist,
        n_tasks=data["n_tasks"],
        n_migrations=data["n_migrations"],
        total_wakeups=data["total_wakeups"],
        wakeup_latency_us=data["wakeup_latency_us"],
        policy_stats=dict(data["policy_stats"]),
        extra=dict(data["extra"]),
        metrics=dict(data.get("metrics", {})),
        sim_wall_s=data["sim_wall_s"],
        events_processed=data["events_processed"],
        rss_peak_kb=host.get("rss_peak_kb", 0),
        gc_collections=host.get("gc_collections", 0),
        gc_collected=host.get("gc_collected", 0),
        alloc_peak_kb=host.get("alloc_peak_kb", 0),
    )


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Content-addressed RunResult store under a root directory."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0   # corrupt entries moved aside this session

    # -- path plumbing ---------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _entry_paths(self):
        """Every cache entry on disk (quarantine excluded)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if path.parent.name == QUARANTINE_DIR:
                continue
            yield path

    # -- spec-level API --------------------------------------------------

    def cacheable(self, spec: "RunSpec") -> bool:
        """Trace-recording runs are not cached (segments are not stored)."""
        return not spec.record_trace

    def get_spec(self, spec: "RunSpec") -> Optional[RunResult]:
        if not self.cacheable(spec):
            return None
        return self.get(spec_key(spec))

    def put_spec(self, spec: "RunSpec", result: RunResult) -> None:
        if not self.cacheable(spec):
            return
        self.put(spec_key(spec), result_to_jsonable(result, spec.machine))

    # -- key-level API ---------------------------------------------------

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            result = result_from_jsonable(data)
        except OSError:
            self.misses += 1           # plain miss: no such entry
            return None
        except _DECODE_ERRORS:
            # A torn, truncated or schema-incompatible entry: park it in
            # quarantine so the miss is repaired by re-simulation and the
            # evidence survives for inspection.
            self.misses += 1
            try:
                self.quarantine(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        atomic_write_json(self._path(key), payload)

    # -- quarantine ------------------------------------------------------

    def quarantine(self, path: Path) -> Path:
        """Move one corrupt entry into ``.quarantine/`` (same filesystem,
        atomic rename); returns the new location."""
        qdir = self.root / QUARANTINE_DIR
        qdir.mkdir(parents=True, exist_ok=True)
        dest = qdir / path.name
        os.replace(path, dest)
        self.quarantined += 1
        return dest

    def verify(self, fix: bool = True) -> Dict[str, Any]:
        """Decode every entry; report (and with ``fix`` quarantine) the
        corrupt ones.  Backs the ``repro cache verify`` subcommand."""
        checked = 0
        bad: List[Dict[str, str]] = []
        for path in self._entry_paths():
            checked += 1
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    result_from_jsonable(json.load(fh))
            except (OSError,) + _DECODE_ERRORS as exc:
                entry = {"path": str(path),
                         "error": f"{type(exc).__name__}: {exc}"}
                if fix:
                    try:
                        entry["quarantined_to"] = str(self.quarantine(path))
                    except OSError as move_exc:
                        entry["quarantine_failed"] = str(move_exc)
                bad.append(entry)
        return {"checked": checked, "corrupt": len(bad), "entries": bad,
                "quarantine_dir": str(self.root / QUARANTINE_DIR)}

    # -- sidecar reports -------------------------------------------------

    def write_report(self, name: str, payload: Dict[str, Any]) -> Path:
        """Atomically write a named JSON report next to the cache entries
        (used for the ``last-sweep`` observability report)."""
        path = self.root / f"{name}.json"
        atomic_write_json(path, payload, indent=2, sort_keys=True)
        return path

    def read_report(self, name: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.root / f"{name}.json", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    # -- maintenance -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Entry count and total size on disk (plus session hit counters)."""
        n = 0
        size = 0
        quarantined = 0
        for path in self._entry_paths():
            n += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        qdir = self.root / QUARANTINE_DIR
        if qdir.is_dir():
            quarantined = sum(1 for _ in qdir.glob("*.json"))
        return {"root": str(self.root), "entries": n, "bytes": size,
                "quarantined": quarantined,
                "session_hits": self.hits, "session_misses": self.misses}

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        n = self.stats()["entries"]
        if self.root.is_dir():
            shutil.rmtree(self.root)
        return n
