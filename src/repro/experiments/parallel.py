"""Parallel sweep execution.

Every paper figure is a sweep of independent (workload × machine ×
scheduler × governor × seed) simulations.  :class:`SweepExecutor` fans a
list of picklable :class:`RunSpec`\\ s out over a ``ProcessPoolExecutor``
and returns results in spec order, so a parallel sweep aggregates
bit-identically to the serial loop: each simulation owns its engine and
derives all randomness from its spec's seed, and ``pool.map`` preserves
ordering regardless of completion order.

An optional :class:`~repro.experiments.cache.ResultCache` short-circuits
specs that were already simulated (by any previous process — the cache is
on disk and content-addressed), so only misses reach the pool.

Worker count comes from, in order: the ``jobs`` argument, the
``$REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.params import NestParams
from ..hw.machines import get_machine
from ..kernel.scheduler_core import KernelConfig
from ..metrics.summary import RunResult
from ..workloads.catalog import make_workload
from .cache import ResultCache
from .runner import run_experiment


def default_jobs() -> int:
    """Worker count: $REPRO_JOBS when set, else the machine's cpu count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one simulation.

    Carries names rather than objects: the workload is rebuilt from the
    catalogue and the machine from its short key inside the worker, so a
    spec crosses process boundaries with no engine state attached.
    """

    workload: str                  # catalogue name, e.g. "configure-gcc"
    machine: str                   # machine key, e.g. "5218_2s"
    scheduler: str = "cfs"
    governor: str = "schedutil"
    seed: int = 0
    scale: float = 1.0
    nest_params: Optional[NestParams] = None
    max_us: Optional[int] = None
    kernel_config: Optional[KernelConfig] = None
    record_trace: bool = False

    @property
    def label(self) -> str:
        return (f"{self.workload}/{self.machine}/"
                f"{self.scheduler}-{self.governor}/s{self.seed}")


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec to completion (this is the pool's worker function)."""
    workload = make_workload(spec.workload, scale=spec.scale)
    return run_experiment(
        workload,
        get_machine(spec.machine),
        spec.scheduler,
        spec.governor,
        seed=spec.seed,
        nest_params=spec.nest_params,
        record_trace=spec.record_trace,
        max_us=spec.max_us,
        kernel_config=spec.kernel_config,
    )


@dataclass
class SweepStats:
    """Telemetry of one executor sweep (printed by the CLI summary line)."""

    n_specs: int = 0
    simulated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_used: bool = False
    workers: int = 1
    wall_s: float = 0.0
    events: int = 0
    sim_wall_s: float = 0.0        # summed per-simulation wall time

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    def summary(self) -> str:
        parts = [f"sweep: {self.n_specs} runs "
                 f"({self.simulated} simulated, {self.cache_hits} cached) "
                 f"in {self.wall_s:.2f}s"]
        if self.simulated:
            parts.append(f"{self.events:,} events, "
                         f"{self.events_per_sec:,.0f} events/s, "
                         f"{self.workers} worker(s)")
        if self.cache_used:
            parts.append(f"cache: {self.cache_hits} hit(s), "
                         f"{self.cache_misses} miss(es)")
        return " — ".join(parts)

    def as_dict(self) -> dict:
        return {
            "n_specs": self.n_specs, "simulated": self.simulated,
            "cache_hits": self.cache_hits, "cache_misses": self.cache_misses,
            "cache_used": self.cache_used, "workers": self.workers,
            "wall_s": self.wall_s, "events": self.events,
            "sim_wall_s": self.sim_wall_s,
            "events_per_sec": self.events_per_sec,
        }


#: Progress callback signature: (done, total, spec, result, cached).
ProgressFn = Callable[[int, int, RunSpec, RunResult, bool], None]


def stderr_progress(done: int, total: int, spec: RunSpec,
                    result: RunResult, cached: bool) -> None:
    """The default ``--progress`` live line (one carriage-returned line)."""
    src = "cache " if cached else f"{result.sim_wall_s:5.2f}s"
    line = f"\r[{done}/{total}] {src}  {spec.label}"
    sys.stderr.write(line[:118].ljust(118))
    if done == total:
        sys.stderr.write("\n")
    sys.stderr.flush()


class SweepExecutor:
    """Runs RunSpecs, in parallel, with optional result caching.

    Results come back in spec order whatever the completion order, and a
    single-worker executor produces byte-identical results to calling
    :func:`execute_spec` in a loop — determinism is per-spec, not
    per-schedule.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressFn] = None) -> None:
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.cache = cache
        self.progress = progress
        self.last_stats = SweepStats()

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; returns results in the order of ``specs``."""
        t0 = time.perf_counter()
        results: List[Optional[RunResult]] = [None] * len(specs)
        progress = self.progress
        done = 0

        misses: List[int] = []
        hits = 0
        if self.cache is not None:
            for i, spec in enumerate(specs):
                cached = self.cache.get_spec(spec)
                if cached is not None:
                    results[i] = cached
                    hits += 1
                else:
                    misses.append(i)
        else:
            misses = list(range(len(specs)))
        if progress is not None:
            for i, res in enumerate(results):
                if res is not None:
                    done += 1
                    progress(done, len(specs), specs[i], res, True)

        workers = min(self.jobs, len(misses)) if misses else 0
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if progress is None:
                    fresh = pool.map(execute_spec, [specs[i] for i in misses])
                    for i, res in zip(misses, fresh):
                        results[i] = res
                else:
                    # submit + wait so the progress line moves as runs
                    # complete; the index map keeps results in spec order,
                    # so output is identical to the map() path.
                    futures = {pool.submit(execute_spec, specs[i]): i
                               for i in misses}
                    pending = set(futures)
                    while pending:
                        finished, pending = wait(
                            pending, return_when=FIRST_COMPLETED)
                        for fut in finished:
                            i = futures[fut]
                            results[i] = fut.result()
                            done += 1
                            progress(done, len(specs), specs[i],
                                     results[i], False)
        else:
            for i in misses:
                results[i] = execute_spec(specs[i])
                if progress is not None:
                    done += 1
                    progress(done, len(specs), specs[i], results[i], False)

        if self.cache is not None:
            for i in misses:
                self.cache.put_spec(specs[i], results[i])

        out = [r for r in results if r is not None]
        assert len(out) == len(specs)
        self.last_stats = SweepStats(
            n_specs=len(specs),
            simulated=len(misses),
            cache_hits=hits,
            cache_misses=len(misses) if self.cache is not None else 0,
            cache_used=self.cache is not None,
            workers=max(workers, 1) if misses else 0,
            wall_s=time.perf_counter() - t0,
            events=sum(out[i].events_processed for i in misses),
            sim_wall_s=sum(out[i].sim_wall_s for i in misses),
        )
        self._write_report(specs, out, set(misses))
        return out

    def _write_report(self, specs: Sequence[RunSpec],
                      results: Sequence[RunResult], missed: set) -> None:
        """Persist the sweep's observability report (``repro obs report``)."""
        if self.cache is None:
            return
        runs = [{
            "label": spec.label,
            "cached": i not in missed,
            "sim_wall_s": res.sim_wall_s,
            "events_processed": res.events_processed,
            "makespan_us": res.makespan_us,
        } for i, (spec, res) in enumerate(zip(specs, results))]
        try:
            self.cache.write_report("last-sweep", {
                "stats": self.last_stats.as_dict(),
                "runs": runs,
            })
        except OSError:
            pass   # a read-only cache dir must not kill the sweep
