"""Parallel sweep execution.

Every paper figure is a sweep of independent (workload × machine ×
scheduler × governor × seed) simulations.  :class:`SweepExecutor` fans a
list of picklable :class:`RunSpec`\\ s out over a ``ProcessPoolExecutor``
and returns results in spec order, so a parallel sweep aggregates
bit-identically to the serial loop: each simulation owns its engine and
derives all randomness from its spec's seed, and ``pool.map`` preserves
ordering regardless of completion order.

An optional :class:`~repro.experiments.cache.ResultCache` short-circuits
specs that were already simulated (by any previous process — the cache is
on disk and content-addressed), so only misses reach the pool.

Worker count comes from, in order: the ``jobs`` argument, the
``$REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.params import NestParams
from ..hw.machines import get_machine
from ..kernel.scheduler_core import KernelConfig
from ..metrics.summary import RunResult
from ..workloads.catalog import make_workload
from .cache import ResultCache
from .runner import run_experiment


def default_jobs() -> int:
    """Worker count: $REPRO_JOBS when set, else the machine's cpu count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one simulation.

    Carries names rather than objects: the workload is rebuilt from the
    catalogue and the machine from its short key inside the worker, so a
    spec crosses process boundaries with no engine state attached.
    """

    workload: str                  # catalogue name, e.g. "configure-gcc"
    machine: str                   # machine key, e.g. "5218_2s"
    scheduler: str = "cfs"
    governor: str = "schedutil"
    seed: int = 0
    scale: float = 1.0
    nest_params: Optional[NestParams] = None
    max_us: Optional[int] = None
    kernel_config: Optional[KernelConfig] = None
    record_trace: bool = False

    @property
    def label(self) -> str:
        return (f"{self.workload}/{self.machine}/"
                f"{self.scheduler}-{self.governor}/s{self.seed}")


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec to completion (this is the pool's worker function)."""
    workload = make_workload(spec.workload, scale=spec.scale)
    return run_experiment(
        workload,
        get_machine(spec.machine),
        spec.scheduler,
        spec.governor,
        seed=spec.seed,
        nest_params=spec.nest_params,
        record_trace=spec.record_trace,
        max_us=spec.max_us,
        kernel_config=spec.kernel_config,
    )


@dataclass
class SweepStats:
    """Telemetry of one executor sweep (printed by the CLI summary line)."""

    n_specs: int = 0
    simulated: int = 0
    cache_hits: int = 0
    workers: int = 1
    wall_s: float = 0.0
    events: int = 0
    sim_wall_s: float = 0.0        # summed per-simulation wall time

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    def summary(self) -> str:
        parts = [f"sweep: {self.n_specs} runs "
                 f"({self.simulated} simulated, {self.cache_hits} cached) "
                 f"in {self.wall_s:.2f}s"]
        if self.simulated:
            parts.append(f"{self.events:,} events, "
                         f"{self.events_per_sec:,.0f} events/s, "
                         f"{self.workers} worker(s)")
        return " — ".join(parts)


class SweepExecutor:
    """Runs RunSpecs, in parallel, with optional result caching.

    Results come back in spec order whatever the completion order, and a
    single-worker executor produces byte-identical results to calling
    :func:`execute_spec` in a loop — determinism is per-spec, not
    per-schedule.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None) -> None:
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.cache = cache
        self.last_stats = SweepStats()

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; returns results in the order of ``specs``."""
        t0 = time.perf_counter()
        results: List[Optional[RunResult]] = [None] * len(specs)

        misses: List[int] = []
        hits = 0
        if self.cache is not None:
            for i, spec in enumerate(specs):
                cached = self.cache.get_spec(spec)
                if cached is not None:
                    results[i] = cached
                    hits += 1
                else:
                    misses.append(i)
        else:
            misses = list(range(len(specs)))

        workers = min(self.jobs, len(misses)) if misses else 0
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = pool.map(execute_spec, [specs[i] for i in misses])
                for i, res in zip(misses, fresh):
                    results[i] = res
        else:
            for i in misses:
                results[i] = execute_spec(specs[i])

        if self.cache is not None:
            for i in misses:
                self.cache.put_spec(specs[i], results[i])

        out = [r for r in results if r is not None]
        assert len(out) == len(specs)
        self.last_stats = SweepStats(
            n_specs=len(specs),
            simulated=len(misses),
            cache_hits=hits,
            workers=max(workers, 1) if misses else 0,
            wall_s=time.perf_counter() - t0,
            events=sum(out[i].events_processed for i in misses),
            sim_wall_s=sum(out[i].sim_wall_s for i in misses),
        )
        return out
