"""Parallel sweep execution, hardened against worker failure.

Every paper figure is a sweep of independent (workload × machine ×
scheduler × governor × seed) simulations.  :class:`SweepExecutor` fans a
list of picklable :class:`RunSpec`\\ s out over a ``ProcessPoolExecutor``
and returns results in spec order, so a parallel sweep aggregates
bit-identically to the serial loop: each simulation owns its engine and
derives all randomness from its spec's seed.

An optional :class:`~repro.experiments.cache.ResultCache` short-circuits
specs that were already simulated (by any previous process — the cache is
on disk and content-addressed), so only misses reach the pool.

The executor survives an imperfect world:

* every completed run is **checkpointed** to the cache immediately, so an
  interrupted sweep resumes from where it stopped;
* a worker that dies (``BrokenProcessPool``) triggers a bounded number of
  **retry rounds** with backoff; if the pool keeps dying the sweep
  **degrades to serial** execution in the parent process;
* with ``timeout_s`` set, a pool that produces no completion for that
  long is presumed hung: it is killed and the outstanding specs retried;
* ``KeyboardInterrupt`` flushes completed results, writes the sweep
  report with ``interrupted: true`` and prints a partial summary before
  re-raising.

Worker count comes from, in order: the ``jobs`` argument, the
``$REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..core.params import NestParams
from ..faults import FaultConfig
from ..hw.machines import get_machine
from ..kernel.scheduler_core import KernelConfig
from ..metrics.summary import RunResult
from ..obs.telemetry.hub import TelemetryHub, worker_telemetry
from ..workloads.catalog import make_workload
from .cache import ResultCache, spec_key
from .runner import run_experiment


def default_jobs() -> int:
    """Worker count: $REPRO_JOBS when set, else the machine's cpu count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one simulation.

    Carries names rather than objects: the workload is rebuilt from the
    catalogue and the machine from its short key inside the worker, so a
    spec crosses process boundaries with no engine state attached.
    """

    workload: str                  # catalogue name, e.g. "configure-gcc"
    machine: str                   # machine key, e.g. "5218_2s"
    scheduler: str = "cfs"
    governor: str = "schedutil"
    seed: int = 0
    scale: float = 1.0
    nest_params: Optional[NestParams] = None
    max_us: Optional[int] = None
    kernel_config: Optional[KernelConfig] = None
    record_trace: bool = False
    faults: Optional[FaultConfig] = None
    # Simulation backend ("ref" or "fast").  Deliberately absent from
    # spec_key: the engines are bit-identical, so cached results are
    # interchangeable between them.
    engine: str = "ref"

    @property
    def label(self) -> str:
        return (f"{self.workload}/{self.machine}/"
                f"{self.scheduler}-{self.governor}/s{self.seed}")


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec to completion (this is the pool's worker function).

    When this process carries a telemetry emitter (pool workers get one
    from :meth:`TelemetryHub.pool_init`; the parent gets one for
    serial/degraded rounds), the run streams ``run_start`` / heartbeat /
    ``run_end`` records back to the hub — purely observational, so the
    result is bit-identical either way.
    """
    _chaos_hook(spec)
    telemetry = worker_telemetry()
    if telemetry is not None:
        telemetry.run_start(spec.label)
    try:
        workload = make_workload(spec.workload, scale=spec.scale)
        result = run_experiment(
            workload,
            get_machine(spec.machine),
            spec.scheduler,
            spec.governor,
            seed=spec.seed,
            nest_params=spec.nest_params,
            record_trace=spec.record_trace,
            max_us=spec.max_us,
            kernel_config=spec.kernel_config,
            faults=spec.faults,
            engine=spec.engine,
            telemetry=telemetry,
        )
    except BaseException as exc:
        if telemetry is not None:
            telemetry.run_error(spec.label, exc)
        raise
    if telemetry is not None:
        telemetry.run_end(result)
    return result


def _chaos_hook(spec: RunSpec) -> None:
    """Test/CI hook that faults the *worker process* itself.

    Active only when both ``$REPRO_CHAOS`` (comma list of modes:
    ``crash-once``, ``hang-once``) and ``$REPRO_CHAOS_DIR`` (a directory
    for one-shot sentinel files) are set, and only inside a pool worker —
    never in the parent, so the serial fallback cannot take itself down.
    Each spec is assigned one mode by its content hash and faulted exactly
    once; the retry then runs clean.  This is how the CI chaos job proves
    the executor's crash/hang recovery end to end.
    """
    modes = [m.strip() for m in os.environ.get("REPRO_CHAOS", "").split(",")
             if m.strip()]
    root = os.environ.get("REPRO_CHAOS_DIR", "")
    if not modes or not root:
        return
    if multiprocessing.parent_process() is None:
        return    # parent process: chaos applies to pool workers only
    key = spec_key(spec)
    mode = modes[int(key[:8], 16) % len(modes)]
    sentinel = os.path.join(root, f"{key}.tripped")
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return    # this spec already took its fault — run normally
    except OSError:
        return
    os.close(fd)
    if mode == "crash-once":
        os._exit(23)
    if mode == "hang-once":
        time.sleep(600)


@dataclass
class SweepStats:
    """Telemetry of one executor sweep (printed by the CLI summary line)."""

    n_specs: int = 0
    simulated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_used: bool = False
    workers: int = 1
    wall_s: float = 0.0
    events: int = 0
    sim_wall_s: float = 0.0        # summed per-simulation wall time
    retried: int = 0               # specs that needed more than one attempt
    timeouts: int = 0              # pool stalls that killed the pool
    recovered: int = 0             # cache hits checkpointed by an
    #                                interrupted previous sweep
    skipped: int = 0               # specs abandoned after retries
    degraded: bool = False         # pool kept dying; finished serially
    interrupted: bool = False      # KeyboardInterrupt cut the sweep short

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    def summary(self) -> str:
        parts = [f"sweep: {self.n_specs} runs "
                 f"({self.simulated} simulated, {self.cache_hits} cached) "
                 f"in {self.wall_s:.2f}s"]
        if self.simulated:
            parts.append(f"{self.events:,} events, "
                         f"{self.events_per_sec:,.0f} events/s, "
                         f"{self.workers} worker(s)")
        if self.cache_used:
            parts.append(f"cache: {self.cache_hits} hit(s), "
                         f"{self.cache_misses} miss(es)")
        bits = []
        if self.retried:
            bits.append(f"{self.retried} retried")
        if self.timeouts:
            bits.append(f"{self.timeouts} timeout(s)")
        if self.recovered:
            bits.append(f"{self.recovered} recovered from checkpoint")
        if self.skipped:
            bits.append(f"{self.skipped} skipped")
        if self.degraded:
            bits.append("degraded to serial")
        if bits:
            parts.append("hardening: " + ", ".join(bits))
        if self.interrupted:
            parts.append("INTERRUPTED (completed runs checkpointed)")
        return " — ".join(parts)

    def as_dict(self) -> dict:
        return {
            "n_specs": self.n_specs, "simulated": self.simulated,
            "cache_hits": self.cache_hits, "cache_misses": self.cache_misses,
            "cache_used": self.cache_used, "workers": self.workers,
            "wall_s": self.wall_s, "events": self.events,
            "sim_wall_s": self.sim_wall_s,
            "events_per_sec": self.events_per_sec,
            "retried": self.retried, "timeouts": self.timeouts,
            "recovered": self.recovered, "skipped": self.skipped,
            "degraded": self.degraded, "interrupted": self.interrupted,
        }


#: Progress callback signature: (done, total, spec, result, cached).
ProgressFn = Callable[[int, int, RunSpec, RunResult, bool], None]


def stderr_progress(done: int, total: int, spec: RunSpec,
                    result: RunResult, cached: bool) -> None:
    """The default ``--progress`` live line (one carriage-returned line)."""
    src = "cache " if cached else f"{result.sim_wall_s:5.2f}s"
    line = f"\r[{done}/{total}] {src}  {spec.label}"
    sys.stderr.write(line[:118].ljust(118))
    if done == total:
        sys.stderr.write("\n")
    sys.stderr.flush()


def _scalar_metrics(metrics: Dict[str, object]) -> Dict[str, float]:
    """Scalar instruments (counters/gauges) of a serialized registry.

    History rows and the dashboard plot these; histograms stay in the
    cached result only.
    """
    out: Dict[str, float] = {}
    for name, entry in metrics.items():
        if isinstance(entry, dict) and entry.get("type") in ("counter",
                                                             "gauge"):
            out[name] = entry["value"]
    return out


def _history_metrics(metrics: Dict[str, object]) -> Dict[str, float]:
    """What a history row records: raw scalars plus the ``derived.*``
    paper metrics (wakeup percentiles, tier shares).

    Derived metrics are computed parent-side from the already serialized
    registry — strictly post-hoc, nothing moves in the simulation — and
    are gated by ``repro history diff`` exactly like counters (rows
    from before the analysis layer simply lack the keys, which the
    gate's key intersection skips).
    """
    from ..obs.analysis.report import derived_metrics
    out = _scalar_metrics(metrics)
    out.update(derived_metrics(metrics))
    return out


class SweepFailure(RuntimeError):
    """A spec exhausted its retry budget (and ``skip_failures`` is off)."""


class _SweepState:
    """Mutable bookkeeping of one run() invocation."""

    __slots__ = ("attempts", "retried", "timeouts", "skipped", "degraded",
                 "pool_breaks", "completed", "events", "sim_wall",
                 "max_workers")

    def __init__(self) -> None:
        self.attempts: Dict[int, int] = {}   # index -> failed attempts
        self.retried: Set[int] = set()
        self.timeouts = 0
        self.skipped: Dict[int, str] = {}    # index -> error description
        self.degraded = False
        self.pool_breaks = 0
        self.completed: Set[int] = set()
        self.events = 0
        self.sim_wall = 0.0
        self.max_workers = 0


class SweepExecutor:
    """Runs RunSpecs, in parallel, with caching, retries and timeouts.

    Results come back in spec order whatever the completion order, and a
    single-worker executor produces byte-identical results to calling
    :func:`execute_spec` in a loop — determinism is per-spec, not
    per-schedule.

    ``timeout_s`` bounds how long the pool may go without completing any
    run before it is presumed hung and killed.  ``retries`` bounds the
    attempts per spec (and the pool-restart rounds before degrading to
    serial).  ``skip_failures`` turns an exhausted retry budget into a
    skipped entry instead of an exception.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressFn] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 2,
                 backoff_s: float = 0.05,
                 skip_failures: bool = False,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.cache = cache
        self.progress = progress
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = max(0.0, backoff_s)
        self.skip_failures = skip_failures
        self.telemetry = telemetry
        self.last_stats = SweepStats()
        self._done = 0
        self._total = 0

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; returns results in the order of ``specs``.

        With ``skip_failures`` the returned list can hold ``None`` at the
        positions of abandoned specs; otherwise it is always complete.
        """
        t0 = time.perf_counter()
        specs = list(specs)
        n = len(specs)
        results: List[Optional[RunResult]] = [None] * n
        self._done = 0
        self._total = n
        if self.telemetry is not None:
            self.telemetry.open_sweep(n_specs=n, jobs=self.jobs)

        checkpoint_labels = self._checkpoint_labels()
        recovered = 0
        misses: List[int] = []
        hits = 0
        if self.cache is not None:
            for i, spec in enumerate(specs):
                cached = self.cache.get_spec(spec)
                if cached is not None:
                    results[i] = cached
                    hits += 1
                    if spec.label in checkpoint_labels:
                        recovered += 1
                else:
                    misses.append(i)
        else:
            misses = list(range(n))
        for i, res in enumerate(results):
            if res is None:
                continue
            self._done += 1
            if self.progress is not None:
                self.progress(self._done, n, specs[i], res, True)
            if self.telemetry is not None:
                outcome = ("checkpoint"
                           if specs[i].label in checkpoint_labels
                           else "cached")
                self.telemetry.run_done(specs[i].label, outcome,
                                        self._done, n, result=res)

        state = _SweepState()
        try:
            self._execute(specs, misses, results, state)
        except KeyboardInterrupt:
            self._finalize(specs, results, misses, hits, recovered, state,
                           t0, checkpoint_labels, interrupted=True)
            sys.stderr.write("\nsweep interrupted — "
                             + self.last_stats.summary() + "\n")
            sys.stderr.flush()
            raise
        self._finalize(specs, results, misses, hits, recovered, state, t0,
                       checkpoint_labels, interrupted=False)
        if not state.skipped:
            assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Execution rounds
    # ------------------------------------------------------------------

    def _execute(self, specs: List[RunSpec], misses: List[int],
                 results: List[Optional[RunResult]],
                 state: _SweepState) -> None:
        todo = list(misses)
        round_no = 0
        while todo:
            if round_no > 0 and self.backoff_s > 0:
                time.sleep(min(self.backoff_s * (2 ** min(round_no - 1, 6)),
                               2.0))
            round_no += 1
            workers = min(self.jobs, len(todo))
            if workers <= 1 or state.degraded:
                state.max_workers = max(state.max_workers, 1)
                todo = self._serial_round(specs, todo, results, state)
            else:
                state.max_workers = max(state.max_workers, workers)
                todo = self._pool_round(specs, todo, results, state, workers)

    def _serial_round(self, specs: List[RunSpec], todo: List[int],
                      results: List[Optional[RunResult]],
                      state: _SweepState) -> List[int]:
        retry: List[int] = []
        for i in todo:
            try:
                res = execute_spec(specs[i])
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                state.attempts[i] = state.attempts.get(i, 0) + 1
                retry.extend(self._triage([i], specs, state, repr(exc)))
                continue
            results[i] = res
            self._complete(specs, i, res, state)
        return retry

    def _pool_round(self, specs: List[RunSpec], todo: List[int],
                    results: List[Optional[RunResult]], state: _SweepState,
                    workers: int) -> List[int]:
        initializer, initargs = (None, ())
        if self.telemetry is not None:
            initializer, initargs = self.telemetry.pool_init()
        pool = ProcessPoolExecutor(max_workers=workers,
                                   initializer=initializer,
                                   initargs=initargs)
        try:
            futures = {pool.submit(execute_spec, specs[i]): i for i in todo}
            pending = set(futures)
            retry: List[int] = []
            while pending:
                finished, pending = wait(pending, timeout=self.timeout_s,
                                         return_when=FIRST_COMPLETED)
                if not finished:
                    # No completion within timeout_s: the pool is presumed
                    # hung.  Kill it; outstanding specs are charged one
                    # attempt and retried in a fresh round.
                    state.timeouts += 1
                    hung = [futures[f] for f in pending]
                    for i in hung:
                        state.attempts[i] = state.attempts.get(i, 0) + 1
                    self._kill_pool(pool)
                    retry.extend(self._triage(hung, specs, state,
                                              "timed out"))
                    return retry
                broken = False
                for fut in finished:
                    i = futures[fut]
                    try:
                        res = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        break
                    except Exception as exc:
                        state.attempts[i] = state.attempts.get(i, 0) + 1
                        retry.extend(self._triage([i], specs, state,
                                                  repr(exc)))
                    else:
                        results[i] = res
                        self._complete(specs, i, res, state)
                if broken:
                    # A worker died (crash, OOM-kill, ...) and took the
                    # whole pool with it.  Everything unfinished goes into
                    # the next round; if pools keep dying, degrade to
                    # serial execution in this process.
                    state.pool_breaks += 1
                    if state.pool_breaks > self.retries:
                        state.degraded = True
                    self._kill_pool(pool)
                    unfinished = sorted(
                        i for i in todo
                        if i not in state.completed
                        and i not in state.skipped and i not in retry)
                    state.retried.update(unfinished)
                    return retry + unfinished
            pool.shutdown()
            return retry
        except BaseException:
            self._kill_pool(pool)
            raise

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a (possibly hung) pool down without waiting for it.

        The worker handles must be snapshotted *before* ``shutdown`` —
        it drops the executor's ``_processes`` reference — or a hung
        worker survives, and the pool's non-daemon management thread
        waits on it forever, wedging interpreter exit.
        """
        procs = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for p in procs.values():
            try:
                p.terminate()
            except Exception:
                pass
        for p in procs.values():
            try:
                p.join(timeout=1.0)
            except Exception:
                pass

    def _triage(self, indices: Sequence[int], specs: List[RunSpec],
                state: _SweepState, error: str) -> List[int]:
        """Decide, per failed spec, between retry / skip / raise."""
        retry: List[int] = []
        for i in sorted(indices):
            if state.attempts.get(i, 0) <= self.retries:
                state.retried.add(i)
                retry.append(i)
            elif self.skip_failures:
                state.skipped[i] = error
                if self.telemetry is not None:
                    self.telemetry.run_done(specs[i].label, "skipped",
                                            self._done, self._total,
                                            attempts=state.attempts.get(i, 0))
            else:
                raise SweepFailure(
                    f"{specs[i].label} failed after "
                    f"{state.attempts[i]} attempt(s): {error}")
        return retry

    def _complete(self, specs: List[RunSpec], i: int, res: RunResult,
                  state: _SweepState) -> None:
        """Bookkeeping + immediate checkpoint for one finished run."""
        state.completed.add(i)
        state.events += res.events_processed
        state.sim_wall += res.sim_wall_s
        if self.cache is not None:
            try:
                self.cache.put_spec(specs[i], res)
            except OSError:
                pass   # a read-only cache dir must not kill the sweep
        self._done += 1
        if self.progress is not None:
            self.progress(self._done, self._total, specs[i], res, False)
        if self.telemetry is not None:
            outcome = "retried" if i in state.retried else "simulated"
            self.telemetry.run_done(
                specs[i].label, outcome, self._done, self._total, result=res,
                attempts=state.attempts.get(i, 0) + 1)

    # ------------------------------------------------------------------
    # Reporting / resume
    # ------------------------------------------------------------------

    def _checkpoint_labels(self) -> frozenset:
        """Labels completed by a previous *interrupted* sweep; their cache
        hits count as recovered-from-checkpoint in this sweep's report."""
        if self.cache is None:
            return frozenset()
        try:
            prev = self.cache.read_report("last-sweep")
        except Exception:
            return frozenset()
        if not prev or not prev.get("interrupted"):
            return frozenset()
        return frozenset(r.get("label") for r in prev.get("runs", ())
                         if r.get("completed"))

    def _finalize(self, specs: List[RunSpec],
                  results: List[Optional[RunResult]], misses: List[int],
                  hits: int, recovered: int, state: _SweepState, t0: float,
                  checkpoint_labels: frozenset, interrupted: bool) -> None:
        self.last_stats = SweepStats(
            n_specs=len(specs),
            simulated=len(state.completed),
            cache_hits=hits,
            cache_misses=len(misses) if self.cache is not None else 0,
            cache_used=self.cache is not None,
            workers=max(state.max_workers, 1) if misses else 0,
            wall_s=time.perf_counter() - t0,
            events=state.events,
            sim_wall_s=state.sim_wall,
            retried=len(state.retried),
            timeouts=state.timeouts,
            recovered=recovered,
            skipped=len(state.skipped),
            degraded=state.degraded,
            interrupted=interrupted,
        )
        runs = self._run_entries(specs, results, misses, state,
                                 checkpoint_labels)
        self._write_report(runs, interrupted)
        if self.telemetry is not None:
            self.telemetry.close_sweep(self.last_stats.as_dict(), runs,
                                       interrupted=interrupted)

    def _run_entries(self, specs: List[RunSpec],
                     results: List[Optional[RunResult]], misses: List[int],
                     state: _SweepState,
                     checkpoint_labels: frozenset) -> List[dict]:
        """Per-run report entries (the sweep report and history rows).

        Each run records an ``outcome``: ``cached`` / ``checkpoint`` (a hit
        written by a previous interrupted sweep) / ``simulated`` /
        ``retried`` (simulated, needed >1 attempt) / ``skipped`` /
        ``pending`` (never ran — the sweep was interrupted first).
        """
        missset = set(misses)
        runs = []
        for i, spec in enumerate(specs):
            res = results[i]
            if i not in missset:
                outcome = ("checkpoint" if spec.label in checkpoint_labels
                           else "cached")
            elif i in state.skipped:
                outcome = "skipped"
            elif res is None:
                outcome = "pending"
            elif i in state.retried:
                outcome = "retried"
            else:
                outcome = "simulated"
            entry = {
                "label": spec.label,
                "outcome": outcome,
                "cached": i not in missset,
                "completed": res is not None,
                "engine": spec.engine,
                "seed": spec.seed,
                "spec_key": spec_key(spec),
                "attempts": state.attempts.get(i, 0)
                + (1 if i in state.completed else 0),
            }
            if res is not None:
                entry["sim_wall_s"] = res.sim_wall_s
                entry["events_processed"] = res.events_processed
                entry["makespan_us"] = res.makespan_us
                entry["energy_j"] = res.energy_joules
                entry["rss_peak_kb"] = res.rss_peak_kb
                entry["metrics"] = _history_metrics(res.metrics)
            if i in state.skipped:
                entry["error"] = state.skipped[i]
            runs.append(entry)
        return runs

    def _write_report(self, runs: List[dict], interrupted: bool) -> None:
        """Persist the sweep's observability report (``repro obs report``)."""
        if self.cache is None:
            return
        try:
            self.cache.write_report("last-sweep", {
                "stats": self.last_stats.as_dict(),
                "interrupted": interrupted,
                "runs": runs,
            })
        except OSError:
            pass   # a read-only cache dir must not kill the sweep
