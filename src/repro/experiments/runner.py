"""Experiment harness: run (workload × machine × scheduler × governor).

This is the equivalent of the artifact's ``run_everything`` scripts: it
builds a fresh simulator for every run, wires up the measurement sinks, runs
to completion and returns a :class:`RunResult`.  ``compare`` evaluates a set
of scheduler/governor combinations against the paper's baseline
(CFS-schedutil) over several seeds, producing the speedup/error-bar numbers
plotted in Figures 5-13.
"""

from __future__ import annotations

import gc
import os
import sys
import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple)

from ..core.params import NestParams
from ..faults import FaultConfig, FaultInjector, FaultPlan
from ..governors.base import Governor
from ..governors.performance import PerformanceGovernor
from ..governors.schedutil import SchedutilGovernor
from ..hw.machines import Machine
from ..kernel.scheduler_core import Kernel, KernelConfig
from ..metrics.freqdist import FreqDistribution
from ..metrics.summary import (RunResult, energy_savings, improvement_stddev,
                               speedup)
from ..metrics.underload import UnderloadTracker
from ..sched.base import SelectionPolicy
from ..sched.registry import make_registered_policy
from ..sim.engine import Engine
from ..sim.trace import Tracer
from ..workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .parallel import SweepExecutor

#: The paper's baseline combination (§5.1).
BASELINE = ("cfs", "schedutil")

#: The combinations most figures sweep.
STANDARD_COMBOS: Tuple[Tuple[str, str], ...] = (
    ("cfs", "schedutil"),
    ("cfs", "performance"),
    ("nest", "schedutil"),
    ("nest", "performance"),
)


def make_policy(name: str, nest_params: Optional[NestParams] = None) -> SelectionPolicy:
    """Instantiate a selection policy by short name (sched/registry.py)."""
    return make_registered_policy(name, nest_params)


_numpy_notice_shown = False


def resolve_engine(engine: str) -> bool:
    """Validate an ``--engine`` value; True means the fast backend.

    Selecting ``fast`` without numpy installed is not an error — the fast
    engine's stdlib arrays work everywhere — but it prints a one-line
    notice (once per process) so a user expecting vectorised scans knows
    why they are not getting them.
    """
    key = engine.lower()
    if key in ("ref", "reference"):
        return False
    if key != "fast":
        raise ValueError(f"unknown engine {engine!r} "
                         f"(expected 'ref' or 'fast')")
    global _numpy_notice_shown
    if not _numpy_notice_shown:
        _numpy_notice_shown = True
        from ..kernel.soa import numpy_available
        if not numpy_available():
            print("engine 'fast': numpy not installed — using stdlib "
                  "arrays (install the 'fast' extra for vectorised "
                  "wide-topology scans)", file=sys.stderr)
    return True


def _gc_totals() -> Tuple[int, int]:
    """(collections, objects collected) summed over all GC generations."""
    stats = gc.get_stats()
    return (sum(s.get("collections", 0) for s in stats),
            sum(s.get("collected", 0) for s in stats))


def _maybe_start_tracemalloc() -> bool:
    """Start tracemalloc for this run iff ``$REPRO_TRACEMALLOC`` asks.

    Off by default: tracing allocations costs 2-4x wall time, which would
    poison every timing number in the sweep.  Returns True when *this*
    call started tracing (and therefore owns stopping it).
    """
    if os.environ.get("REPRO_TRACEMALLOC", "") not in ("1", "true", "yes"):
        return False
    import tracemalloc
    if tracemalloc.is_tracing():
        return False
    tracemalloc.start()
    return True


def _attach_memory_stats(result: RunResult, gc_base: Tuple[int, int],
                         tracing_allocs: bool) -> None:
    """Fill the host-side memory fields of a finished RunResult.

    Reads only (``getrusage``, ``gc.get_stats``) — the simulation is
    already over, and nothing here feeds back into engine state, so the
    deterministic result surface is untouched.
    """
    from ..obs.telemetry.hub import rss_peak_kb
    result.rss_peak_kb = rss_peak_kb()
    collections, collected = _gc_totals()
    result.gc_collections = collections - gc_base[0]
    result.gc_collected = collected - gc_base[1]
    if tracing_allocs:
        import tracemalloc
        result.alloc_peak_kb = tracemalloc.get_traced_memory()[1] // 1024
        tracemalloc.stop()


def make_governor(name: str) -> Governor:
    """Instantiate a power governor by short name."""
    key = name.lower()
    if key in ("schedutil", "sched"):
        return SchedutilGovernor()
    if key in ("performance", "perf"):
        return PerformanceGovernor()
    raise ValueError(f"unknown governor {name!r}")


def run_experiment(
    workload: Workload,
    machine: Machine,
    scheduler: str = "cfs",
    governor: str = "schedutil",
    seed: int = 0,
    nest_params: Optional[NestParams] = None,
    record_trace: bool = False,
    max_us: Optional[int] = None,
    kernel_config: Optional[KernelConfig] = None,
    collect_events: bool = False,
    faults: Optional[FaultConfig] = None,
    policy_probe: Optional[Callable[[SelectionPolicy], None]] = None,
    engine: str = "ref",
    telemetry: Optional[Any] = None,
) -> RunResult:
    """Run one simulation to completion and collect its measurements.

    ``collect_events=True`` attaches a memory sink to the engine's
    structured event log; the events ride on the result as
    ``result.events`` (transient — not cached, like trace segments).

    ``faults`` enables the chaos subsystem (see :mod:`repro.faults`): the
    config expands into a deterministic fault plan drawn from the run's
    own seeded RNG streams, so the faulted run is exactly as reproducible
    as a clean one.

    ``policy_probe`` is called with the live selection policy after the
    run (and after its own invariant check), before the policy is
    discarded — the verification oracle uses it to snapshot final nest
    membership, which never reaches the serialized result.

    ``engine`` selects the simulation backend: ``"ref"`` (the reference
    object-graph implementation) or ``"fast"`` (the struct-of-arrays
    backend in :mod:`repro.sim.fastengine`).  The two are bit-identical —
    same events, same metrics, same result — which is enforced by the
    dual-engine fuzz gate; ``ENGINE_VERSION`` covers both.

    ``telemetry`` is a per-process
    :class:`~repro.obs.telemetry.hub.WorkerTelemetry` emitter (installed
    by the sweep executor's pool initializer); when present, a
    wall-clock-gated heartbeat sink is piggybacked on the tracer so the
    parent sees live sim-time progress.  The sink only *reads* engine
    state — a telemetry-on run stays bit-identical to a telemetry-off
    run.
    """
    wall_start = time.perf_counter()
    gc_base = _gc_totals()
    tracing_allocs = _maybe_start_tracemalloc()
    fast = resolve_engine(engine)
    if fast:
        from ..sim.fastengine import FastEngine, FastKernel, make_fast_policy
        eng = FastEngine(seed)
        policy = make_fast_policy(scheduler, nest_params)
    else:
        eng = Engine(seed)
        policy = make_policy(scheduler, nest_params)
    engine = eng
    events = engine.obs.attach_memory() if collect_events else None
    tracer = Tracer(machine.n_cpus, record_segments=record_trace)
    gov = make_governor(governor)
    kernel_cls = FastKernel if fast else Kernel
    kernel = kernel_cls(engine, machine, policy, gov,
                        config=kernel_config, tracer=tracer)

    under = UnderloadTracker()
    tracer.add_sink(under.segment_sink)
    kernel.runnable_observers.append(under.runnable_sink)
    fdist = FreqDistribution(machine)
    tracer.add_sink(fdist.segment_sink)
    if telemetry is not None:
        tracer.add_sink(telemetry.heartbeat_sink(engine))

    injector: Optional[FaultInjector] = None
    if faults is not None and faults.enabled:
        plan = FaultPlan.generate(
            faults, machine.n_cpus, machine.topology.n_physical_cores,
            machine.nominal_mhz, machine.min_mhz, engine.rng,
            n_sockets=machine.topology.n_sockets)
        injector = FaultInjector(kernel, plan, faults)
        injector.install()

    workload.start(kernel)
    end = kernel.run_until_idle(max_us)
    policy.check_invariants()
    if policy_probe is not None:
        policy_probe(policy)

    metrics = kernel.metrics.as_dict("kernel.")
    policy_registry = getattr(policy, "metrics", None)
    if policy_registry is not None:
        metrics.update(policy_registry.as_dict(f"{policy.name.lower()}."))

    tasks = kernel.tasks.values()
    result = RunResult(
        scheduler=policy.name,
        governor=gov.name,
        machine=machine.name,
        workload=workload.name,
        seed=seed,
        makespan_us=end,
        energy_joules=kernel.energy.energy_joules,
        underload=under.finalize(end),
        freq_dist=fdist,
        n_tasks=len(kernel.tasks),
        n_migrations=sum(t.n_migrations for t in tasks),
        total_wakeups=sum(t.n_wakeups for t in tasks),
        wakeup_latency_us=sum(t.wakeup_latency_us for t in tasks),
        policy_stats=dict(getattr(policy, "stats", {})),
        metrics=metrics,
        sim_wall_s=time.perf_counter() - wall_start,
        events_processed=engine.events_processed,
    )
    _attach_memory_stats(result, gc_base, tracing_allocs)
    if injector is not None:
        result.extra["faults_injected"] = float(len(injector.plan))
    if record_trace:
        result.extra["n_segments"] = float(len(tracer.segments))
        result.trace_segments = tracer.segments  # type: ignore[attr-defined]
    if events is not None:
        result.extra["n_events"] = float(len(events))
        result.events = events  # type: ignore[attr-defined]
    return result


@dataclass
class ComboStats:
    """Aggregate over the seeds of one scheduler/governor combination."""

    scheduler: str
    governor: str
    makespans_us: List[int] = field(default_factory=list)
    energies_j: List[float] = field(default_factory=list)
    underload_per_s: List[float] = field(default_factory=list)
    top_freq_fraction: List[float] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.scheduler}-{self.governor}"

    @property
    def mean_makespan_us(self) -> float:
        return sum(self.makespans_us) / len(self.makespans_us)

    @property
    def mean_energy_j(self) -> float:
        return sum(self.energies_j) / len(self.energies_j)

    @property
    def mean_underload_per_s(self) -> float:
        return sum(self.underload_per_s) / len(self.underload_per_s)

    @property
    def mean_top_freq(self) -> float:
        return sum(self.top_freq_fraction) / len(self.top_freq_fraction)


@dataclass
class Comparison:
    """Speedups of each combination against the CFS-schedutil baseline."""

    workload: str
    machine: str
    combos: Dict[Tuple[str, str], ComboStats]

    @property
    def baseline(self) -> ComboStats:
        return self.combos[BASELINE]

    def speedup_of(self, scheduler: str, governor: str) -> float:
        cand = self.combos[(scheduler, governor)]
        return speedup(self.baseline.makespans_us, cand.makespans_us)

    def energy_savings_of(self, scheduler: str, governor: str) -> float:
        cand = self.combos[(scheduler, governor)]
        return energy_savings(self.baseline.energies_j, cand.energies_j)

    def error_bar_of(self, scheduler: str, governor: str) -> float:
        cand = self.combos[(scheduler, governor)]
        return improvement_stddev(self.baseline.mean_makespan_us,
                                  [float(v) for v in cand.makespans_us])

    def underload_of(self, scheduler: str, governor: str) -> float:
        return self.combos[(scheduler, governor)].mean_underload_per_s


def compare(
    workload_factory: Callable[[], Workload],
    machine: Machine,
    combos: Sequence[Tuple[str, str]] = STANDARD_COMBOS,
    seeds: Sequence[int] = (1, 2, 3),
    nest_params: Optional[NestParams] = None,
    max_us: Optional[int] = None,
    kernel_config: Optional[KernelConfig] = None,
    executor: Optional["SweepExecutor"] = None,
    faults: Optional[FaultConfig] = None,
    engine: str = "ref",
) -> Comparison:
    """Run every combo over every seed; the paper's Figure 5-13 procedure.

    With an ``executor`` the (combo × seed) sweep fans out over worker
    processes (and consults the executor's result cache); the aggregates
    are built from the results in the same deterministic (combo, seed)
    order as the serial path, so both paths produce identical Comparisons.
    Sweeps the executor cannot express as picklable specs (ad-hoc
    workloads or machines, custom kernel configs) fall back to serial.
    """
    results: Optional[List[RunResult]] = None
    wl_name: Optional[str] = None
    if executor is not None:
        specs = _sweep_specs(workload_factory, machine, combos, seeds,
                             nest_params, max_us, kernel_config, faults,
                             engine=engine)
        if specs is not None:
            results = executor.run(specs)
            wl_name = specs[0].workload

    stats: Dict[Tuple[str, str], ComboStats] = {}
    idx = 0
    for scheduler, governor in combos:
        cs = ComboStats(scheduler, governor)
        for seed in seeds:
            if results is not None:
                res = results[idx]
                idx += 1
            else:
                wl = workload_factory()
                wl_name = wl.name
                res = run_experiment(wl, machine, scheduler, governor, seed,
                                     nest_params=nest_params, max_us=max_us,
                                     kernel_config=kernel_config,
                                     faults=faults, engine=engine)
            cs.makespans_us.append(res.makespan_us)
            cs.energies_j.append(res.energy_joules)
            cs.underload_per_s.append(res.underload.underload_per_second)
            cs.top_freq_fraction.append(res.freq_dist.top_bins_fraction())
        stats[(scheduler, governor)] = cs
    return Comparison(workload=wl_name or "?", machine=machine.name,
                      combos=stats)


def _sweep_specs(
    workload_factory: Callable[[], Workload],
    machine: Machine,
    combos: Sequence[Tuple[str, str]],
    seeds: Sequence[int],
    nest_params: Optional[NestParams],
    max_us: Optional[int],
    kernel_config: Optional[KernelConfig],
    faults: Optional[FaultConfig] = None,
    engine: str = "ref",
) -> Optional[List["RunSpec"]]:
    """Express a compare() sweep as RunSpecs, or None if it cannot be."""
    from ..hw.machines import machine_key
    from ..workloads.catalog import can_reconstruct
    from .parallel import RunSpec

    mk = machine_key(machine)
    if mk is None:
        return None
    probe = workload_factory()
    if not can_reconstruct(probe):
        return None
    scale = getattr(probe, "scale", 1.0)
    return [RunSpec(workload=probe.name, machine=mk, scheduler=scheduler,
                    governor=governor, seed=seed, scale=scale,
                    nest_params=nest_params, max_us=max_us,
                    kernel_config=kernel_config, faults=faults,
                    engine=engine)
            for scheduler, governor in combos
            for seed in seeds]
