"""``python -m repro`` entry point."""

import sys

from .experiments.cli import main

sys.exit(main())
