# Development entry points.  Everything runs from the source tree
# (PYTHONPATH=src), no install required.

PYTHON  ?= python
PYPATH  := PYTHONPATH=src
JOBS    ?=

.PHONY: test fuzz bench profile clean

## Run the tier-1 test suite.
test:
	$(PYPATH) $(PYTHON) -m pytest -q

## Fuzz seeded scenarios through the invariant oracle (tier 2).
## FUZZ_ARGS overrides, e.g. `make fuzz FUZZ_ARGS="--runs 1000 --seed 9"`.
FUZZ_ARGS ?= --runs 200 --seed 1
fuzz:
	$(PYPATH) $(PYTHON) -m repro verify fuzz $(FUZZ_ARGS)

## Run the paper-artefact benchmark suite (uses the on-disk result cache;
## REPRO_NO_CACHE=1 disables it, `make clean` drops it).
bench:
	$(PYPATH) $(PYTHON) -m pytest benchmarks -q -p no:cacheprovider

## Time the representative configure sweep; PROFILE_ARGS adds flags,
## e.g. `make profile PROFILE_ARGS="--profile"` for a cProfile breakdown.
profile:
	$(PYPATH) $(PYTHON) benchmarks/profile_sweep.py --repeat 10 $(PROFILE_ARGS)

clean:
	rm -rf .repro-cache .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
