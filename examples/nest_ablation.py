#!/usr/bin/env python
"""Ablation study: what does each Nest feature contribute?

Reruns the configure and DaCapo scenarios with individual Nest features
disabled (§5.2/§5.3 of the paper) and with scaled parameters, printing the
performance delta of each variant against full Nest.

Run with:  python examples/nest_ablation.py
"""

from repro import NestParams, get_machine, run_experiment
from repro.analysis import render_bars
from repro.workloads import ConfigureWorkload, DacapoWorkload

FEATURES = ("reserve", "compaction", "impatience", "spin",
            "attachment", "wakeup_work_conservation", "placement_flag")


def run(workload_factory, machine, params, seed=1):
    return run_experiment(workload_factory(), machine, "nest", "schedutil",
                          seed=seed, nest_params=params).makespan_us


def ablate(title, workload_factory, machine) -> None:
    full = run(workload_factory, machine, NestParams())
    labels, deltas = [], []
    for feature in FEATURES:
        t = run(workload_factory, machine, NestParams().without(feature))
        labels.append(f"no {feature}")
        deltas.append(full / t - 1)     # negative = variant is slower
    for name, scaled in (
        ("P_remove x0.5", NestParams().scaled(p_remove=0.5)),
        ("P_remove x10", NestParams().scaled(p_remove=10)),
        ("S_max x0.5", NestParams().scaled(s_max=0.5)),
        ("S_max x10", NestParams().scaled(s_max=10)),
        ("R_max x2", NestParams().scaled(r_max=2)),
    ):
        t = run(workload_factory, machine, scaled)
        labels.append(name)
        deltas.append(full / t - 1)
    print(render_bars(title + "  (negative = variant slower than full Nest)",
                      labels, deltas))
    print()


def main() -> None:
    ablate("configure llvm_ninja on the 2-socket 5218",
           lambda: ConfigureWorkload("llvm_ninja"), get_machine("5218_2s"))
    ablate("DaCapo h2 on the 4-socket 6130",
           lambda: DacapoWorkload("h2"), get_machine("6130_4s"))


if __name__ == "__main__":
    main()
