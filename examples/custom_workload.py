#!/usr/bin/env python
"""Writing your own workload: a map-reduce style pipeline.

Demonstrates the behaviour-generator API: tasks are Python generators that
yield actions (Compute, Fork, Sleep, channel Send/Recv, barriers).  The
example builds a two-stage pipeline — mappers producing chunks into a
channel, reducers consuming them — and compares CFS and Nest on it across
two machines.

Run with:  python examples/custom_workload.py
"""

import random

from repro import get_machine, run_experiment
from repro.kernel.syscalls import (Channel, Compute, Fork, Recv, Send,
                                   WaitChildren, WaitTask)
from repro.workloads import Workload, ms_of_work


class MapReduceWorkload(Workload):
    """N mappers feed chunks through a channel to M reducers."""

    def __init__(self, n_mappers=6, n_reducers=3, chunks_per_mapper=30,
                 map_ms=0.8, reduce_ms=1.2):
        self.n_mappers = n_mappers
        self.n_reducers = n_reducers
        self.chunks_per_mapper = chunks_per_mapper
        self.map_ms = map_ms
        self.reduce_ms = reduce_ms
        self.name = f"mapreduce-{n_mappers}x{n_reducers}"

    def start(self, kernel):
        return kernel.spawn(self._driver, name=self.name)

    def _driver(self, api):
        chunks = Channel("chunks")
        mappers = []
        for m in range(self.n_mappers):
            yield Compute(ms_of_work(0.05))
            mapper = yield Fork(self._mapper, name=f"map{m}",
                                args=(m, chunks))
            mappers.append(mapper)
        for r in range(self.n_reducers):
            yield Compute(ms_of_work(0.05))
            yield Fork(self._reducer, name=f"red{r}", args=(chunks,))
        # Wait for the map stage, then shut the reducers down with one
        # poison pill each.
        for mapper in mappers:
            yield WaitTask(mapper)
        for _ in range(self.n_reducers):
            yield Send(chunks, None)
        yield WaitChildren()

    def _mapper(self, api, index, chunks):
        rng = random.Random(1000 + index)
        for _ in range(self.chunks_per_mapper):
            yield Compute(ms_of_work(max(0.1, rng.gauss(self.map_ms,
                                                        self.map_ms * 0.3))))
            yield Send(chunks, "chunk")

    def _reducer(self, api, chunks):
        rng = random.Random(id(self) % 100000)
        while True:
            chunk = yield Recv(chunks)
            if chunk is None:
                return
            yield Compute(ms_of_work(max(0.1, rng.gauss(self.reduce_ms,
                                                        self.reduce_ms * 0.2))))


def main() -> None:
    for machine_key in ("5218_2s", "e78870_4s"):
        machine = get_machine(machine_key)
        print(machine.describe())
        base = None
        for scheduler, governor in (("cfs", "schedutil"),
                                    ("nest", "schedutil"),
                                    ("nest", "performance")):
            res = run_experiment(MapReduceWorkload(), machine,
                                 scheduler, governor, seed=3)
            if base is None:
                base = res.makespan_us
            print(f"  {scheduler}-{governor:11s} "
                  f"{res.makespan_sec * 1000:7.2f} ms "
                  f"({base / res.makespan_us - 1:+.1%} vs CFS-schedutil), "
                  f"energy {res.energy_joules:.2f} J")
        print()


if __name__ == "__main__":
    main()
