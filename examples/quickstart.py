#!/usr/bin/env python
"""Quickstart: run one workload under CFS and Nest and compare.

Builds the paper's flagship scenario — a software-configuration script on
the 2-socket Intel 5218 — and prints runtime, underload, frequency
distribution and CPU energy for the four scheduler/governor combinations
plus the Smove baseline.

Run with:  python examples/quickstart.py
"""

from repro import get_machine, run_experiment
from repro.analysis import render_bars, render_distribution
from repro.workloads import ConfigureWorkload

MACHINE = get_machine("5218_2s")
COMBOS = [
    ("cfs", "schedutil"),
    ("cfs", "performance"),
    ("nest", "schedutil"),
    ("nest", "performance"),
    ("smove", "schedutil"),
]


def main() -> None:
    print(MACHINE.describe())
    print()

    results = {}
    for scheduler, governor in COMBOS:
        workload = ConfigureWorkload("llvm_ninja")
        res = run_experiment(workload, MACHINE, scheduler, governor, seed=1)
        results[(scheduler, governor)] = res
        print(res.brief())

    base = results[("cfs", "schedutil")]
    print()
    labels, speeds = [], []
    for combo, res in results.items():
        if combo == ("cfs", "schedutil"):
            continue
        labels.append("-".join(combo))
        speeds.append(base.makespan_us / res.makespan_us - 1)
    print(render_bars("Speedup vs CFS-schedutil (llvm_ninja configure)",
                      labels, speeds))

    print()
    for combo in (("cfs", "schedutil"), ("nest", "schedutil")):
        fd = results[combo].freq_dist
        print(render_distribution(f"busy-time frequency distribution, "
                                  f"{'-'.join(combo)}",
                                  fd.labels(), fd.fractions()))
        print()

    nest = results[("nest", "schedutil")]
    saving = 1 - nest.energy_joules / base.energy_joules
    print(f"CPU energy: CFS-schedutil {base.energy_joules:.1f} J -> "
          f"Nest-schedutil {nest.energy_joules:.1f} J ({saving:+.1%})")


if __name__ == "__main__":
    main()
