#!/usr/bin/env python
"""Figure 8/9 scenario: trace the DaCapo h2 database under CFS and Nest.

Runs h2 on the 4-socket Intel 6130 with full tracing, prints an ASCII
version of the paper's execution traces (which cores ran, how warm they
were) and the headline comparison: Nest concentrates the work on fewer
cores and gets higher frequencies.

Run with:  python examples/h2_trace.py
"""

from repro import get_machine, run_experiment
from repro.analysis import render_core_trace, render_distribution
from repro.workloads import DacapoWorkload

MACHINE = get_machine("6130_4s")


def main() -> None:
    print(MACHINE.describe())
    edges_mhz = [int(e * 1000) for e in (1.0, 1.6, 2.1, 2.8, 3.1, 3.4, 3.7)]

    for scheduler in ("cfs", "nest"):
        res = run_experiment(DacapoWorkload("h2"), MACHINE, scheduler,
                             "schedutil", seed=1, record_trace=True)
        segments = res.trace_segments
        used_cores = {s.core for s in segments
                      if s.task_id >= 0 and not s.spinning}
        print()
        print(f"=== {scheduler}-schedutil: {res.makespan_sec * 1000:.1f} ms, "
              f"{len(used_cores)} cores used, "
              f"underload/s {res.underload.underload_per_second:.2f}")
        window = min(res.makespan_us, 80_000)
        print(render_core_trace(segments, 0, window, edges_mhz,
                                width=72, min_busy_us=2_000))
        fd = res.freq_dist
        print(render_distribution("frequency distribution",
                                  fd.labels(), fd.fractions()))


if __name__ == "__main__":
    main()
